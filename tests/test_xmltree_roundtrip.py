"""Serializer tests and parse∘serialize round-trip properties."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.builder import parse_document
from repro.xmltree.nodes import Document, Element, Text
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import (
    escape_attribute,
    escape_text,
    event_markup,
    serialize,
    write_document,
    write_events,
)


class TestEscaping:
    def test_text_escaping(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escaping(self):
        assert escape_attribute('a"b<c&d') == "a&quot;b&lt;c&amp;d"
        assert escape_attribute("x\ny") == "x&#10;y"


class TestSerializer:
    def test_empty_element_collapses(self):
        assert serialize(parse_document("<a><b></b></a>")) == "<a><b/></a>"

    def test_declaration_flag(self):
        text = serialize(parse_document("<a/>"), declaration=True)
        assert text.startswith('<?xml version="1.0"')

    def test_write_document_counts_chars(self):
        document = parse_document("<a>x</a>")
        sink = io.StringIO()
        written = write_document(document, sink, declaration=False)
        assert written == len(sink.getvalue()) == len("<a>x</a>")

    def test_event_markup_matches_tree_markup(self):
        text = '<a k="v">one<b>two</b><c/>three</a>'
        via_events = "".join(event_markup(parse_events(text)))
        via_tree = serialize(parse_document(text))
        # Events cannot collapse empty elements (no lookahead); normalise.
        assert via_events.replace("<c></c>", "<c/>") == via_tree


# -- property-based round trips ------------------------------------------------

_tag = st.sampled_from(["a", "b", "c", "data", "x1"])
_text = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\r"),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip())
_attr_value = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\r"), max_size=10
)


@st.composite
def xml_trees(draw, depth=3):
    tag = draw(_tag)
    attributes = draw(
        st.dictionaries(st.sampled_from(["k", "id", "v-1"]), _attr_value, max_size=2)
    )
    element = Element(tag, attributes)
    if depth > 0:
        for child in draw(st.lists(st.one_of(
            _text.map(Text), xml_trees(depth=depth - 1)
        ), max_size=3)):
            element.append(child)
    return element


def _shape(node):
    if isinstance(node, Text):
        return ("text", node.value)
    return (
        "elem",
        node.tag,
        tuple(sorted(node.attributes.items())),
        tuple(_shape(child) for child in _merged_children(node)),
    )


def _merged_children(node):
    """Adjacent text children merge on re-parse; compare modulo merging."""
    merged = []
    for child in node.children:
        if isinstance(child, Text) and merged and isinstance(merged[-1], Text):
            merged[-1] = Text(merged[-1].value + child.value)
        else:
            merged.append(child)
    return merged


@settings(max_examples=120, deadline=None)
@given(xml_trees())
def test_roundtrip_preserves_shape(tree):
    document = Document(tree)
    reparsed = parse_document(serialize(document))
    assert _shape(reparsed.root) == _shape(document.root)


@settings(max_examples=60, deadline=None)
@given(xml_trees(), st.integers(min_value=1, max_value=7))
def test_chunked_parse_equals_whole_parse(tree, chunk_size):
    text = serialize(Document(tree))
    whole = list(parse_events(text))
    chunked = list(parse_events(io.StringIO(text), chunk_size=chunk_size))
    assert whole == chunked


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_double_roundtrip_is_fixpoint(tree):
    once = serialize(parse_document(serialize(Document(tree))))
    twice = serialize(parse_document(once))
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_write_events_reparses_to_same_shape(tree):
    document = Document(tree)
    sink = io.StringIO()
    write_events(parse_events(serialize(document)), sink, declaration=False)
    assert _shape(parse_document(sink.getvalue()).root) == _shape(document.root)
