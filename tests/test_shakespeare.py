"""Shakespeare-corpus workload tests: a second schema family end to end."""

import pytest

from repro.core.pipeline import analyze
from repro.dtd.properties import analyze_grammar
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.shakespeare import (
    SHAKESPEARE_QUERIES,
    generate_play,
    shakespeare_grammar,
)
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator


@pytest.fixture(scope="module")
def play():
    grammar = shakespeare_grammar()
    document = generate_play(acts=3, seed=7)
    interpretation = validate(document, grammar)
    return grammar, document, interpretation


class TestCorpus:
    def test_generated_play_validates(self, play):
        grammar, document, interpretation = play
        assert set(interpretation.names) == document.ids()

    def test_deterministic(self):
        assert serialize(generate_play(acts=2, seed=3)) == serialize(generate_play(acts=2, seed=3))

    def test_grammar_properties(self):
        properties = analyze_grammar(shakespeare_grammar())
        # play.dtd is non-recursive but its unions are unstarred
        # ((PERSONA | PGROUP)+ is plus-guarded, (SPEECH | STAGEDIR ...)+ too).
        assert not properties.recursive

    def test_structure(self, play):
        _, document, _ = play
        tags = [node.tag for node in document.elements()]
        assert tags.count("ACT") == 3
        assert tags.count("SCENE") == 9
        assert "SPEECH" in tags and "STAGEDIR" in tags


class TestQueriesSoundness:
    @pytest.mark.parametrize("name", sorted(SHAKESPEARE_QUERIES))
    def test_query_soundness(self, play, name):
        grammar, document, interpretation = play
        query = SHAKESPEARE_QUERIES[name]
        result = analyze(grammar, [query])
        pruned = prune_document(document, interpretation, result.projector)
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        ), name

    def test_speaker_query_prunes_lines(self, play):
        grammar, document, interpretation = play
        result = analyze(grammar, ["//SPEAKER"])
        pruned = prune_document(document, interpretation, result.projector)
        tags = {node.tag for node in pruned.elements()}
        assert "SPEAKER" in tags and "LINE" not in tags
        assert pruned.size() < 0.5 * document.size()

    def test_value_predicate_keeps_speaker_text(self, play):
        grammar, document, interpretation = play
        query = "//SPEECH[SPEAKER = 'HAMLET']/LINE"
        result = analyze(grammar, [query])
        pruned = prune_document(document, interpretation, result.projector)
        original = XPathEvaluator(document).select(query)
        assert original, "generator should produce HAMLET speeches"
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == [node.node_id for node in original]
        )

    def test_union_projector_for_whole_workload(self, play):
        grammar, document, interpretation = play
        result = analyze(grammar, list(SHAKESPEARE_QUERIES.values()))
        pruned = prune_document(document, interpretation, result.projector)
        for name, query in SHAKESPEARE_QUERIES.items():
            assert (
                XPathEvaluator(pruned).select_ids(query)
                == XPathEvaluator(document).select_ids(query)
            ), name
