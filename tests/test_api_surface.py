"""The package surface is a contract: exactly the workload API, no drift.

``repro.__all__`` is pinned here name by name.  A new re-export (or a
lost one) fails this test, not a downstream user — growing the surface
is a deliberate act that edits this file in the same change.
"""

import warnings

import pytest

import repro

#: The whole public surface, sorted.  Edit deliberately.
EXPECTED = [
    "AnalysisResult",
    "BatchError",
    "BatchResult",
    "ExtractOptions",
    "ExtractResult",
    "ExtractSpec",
    "InferredGrammar",
    "Limits",
    "PruneOptions",
    "PruneResult",
    "StrayDocumentError",
    "UnsupportedSchemaError",
    "__version__",
    "analyze",
    "extract",
    "extract_many",
    "infer_grammar",
    "load_grammar",
    "prune",
    "prune_many",
]


def test_all_is_exactly_the_contract():
    assert repro.__all__ == EXPECTED


def test_all_is_sorted():
    assert repro.__all__ == sorted(repro.__all__)


def test_every_public_name_resolves_without_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for name in repro.__all__:
            assert getattr(repro, name) is not None


def test_public_callables_are_the_canonical_objects():
    from repro.api import prune
    from repro.core.pipeline import analyze
    from repro.extract.api import extract
    from repro.loading import load_grammar
    from repro.parallel import extract_many, prune_many

    assert repro.prune is prune
    assert repro.analyze is analyze
    assert repro.extract is extract
    assert repro.load_grammar is load_grammar
    assert repro.prune_many is prune_many
    assert repro.extract_many is extract_many


def test_legacy_names_are_off_the_surface_but_warn():
    """Nothing deprecated hides in __all__, and every deprecated name
    still resolves (with its warning) — the shim map and the surface
    are disjoint by construction."""
    assert not set(repro._DEPRECATED) & set(repro.__all__)
    for name in ("grammar_from_text", "parse_document", "serialize"):
        with pytest.warns(DeprecationWarning):
            getattr(repro, name)


def test_submodules_stay_importable():
    """The strict surface does not wall off the submodules."""
    import importlib

    for module in (
        "repro.obs",
        "repro.errors",
        "repro.extract",
        "repro.loading",
        "repro.engine.loader",
        "repro.service",
    ):
        assert importlib.import_module(module) is not None


def test_dir_offers_both_surface_and_shims():
    names = dir(repro)
    assert set(EXPECTED) <= set(names)
    assert "serialize" in names and "grammar_from_text" in names
