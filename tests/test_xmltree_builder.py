"""TreeBuilder and scanner behaviour tests."""

import io

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.builder import (
    TreeBuilder,
    build_tree,
    parse_document,
    parse_document_with_doctype,
)
from repro.xmltree.events import Characters, EndElement, StartElement
from repro.xmltree.lexer import Scanner
from repro.xmltree.nodes import Text


class TestTreeBuilder:
    def test_adjacent_text_merges(self):
        events = [
            StartElement("a", {}),
            Characters("one"),
            Characters(" two"),
            EndElement("a"),
        ]
        document = build_tree(events)
        assert len(document.root.children) == 1
        assert document.root.text_value() == "one two"

    def test_strip_whitespace_drops_inter_element_runs(self):
        document = parse_document("<a>\n  <b>x</b>\n  <c/>\n</a>", strip_whitespace=True)
        kinds = [type(child).__name__ for child in document.root.children]
        assert kinds == ["Element", "Element"]

    def test_strip_whitespace_keeps_meaningful_text(self):
        document = parse_document("<a> x </a>", strip_whitespace=True)
        assert document.root.text_value() == " x "

    def test_doctype_is_captured(self):
        _, doctype = parse_document_with_doctype(
            '<!DOCTYPE a SYSTEM "a.dtd"><a/>'
        )
        assert doctype is not None and doctype.system_id == "a.dtd"

    def test_unbalanced_events_rejected(self):
        builder = TreeBuilder()
        builder.feed(StartElement("a", {}))
        with pytest.raises(XMLSyntaxError):
            builder.document()

    def test_no_events_rejected(self):
        with pytest.raises(XMLSyntaxError):
            build_tree([])

    def test_two_roots_rejected(self):
        builder = TreeBuilder()
        for event in (StartElement("a", {}), EndElement("a"), StartElement("b", {})):
            with pytest.raises(XMLSyntaxError) if event.tag == "b" else _noraise():
                builder.feed(event)

    def test_text_outside_root_is_dropped(self):
        builder = TreeBuilder()
        builder.feed(Characters("ignored"))
        builder.feed(StartElement("a", {}))
        builder.feed(EndElement("a"))
        assert builder.document().root.children == []


class _noraise:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestScanner:
    def test_peek_does_not_consume(self):
        scanner = Scanner("ab")
        assert scanner.peek() == "a" and scanner.peek() == "a"
        assert scanner.advance() == "a"

    def test_peek_at(self):
        scanner = Scanner("abc")
        assert scanner.peek_at(2) == "c"
        assert scanner.peek_at(9) == ""

    def test_line_and_column_tracking(self):
        scanner = Scanner("ab\ncd")
        for _ in range(4):
            scanner.advance()
        assert scanner.line == 2
        assert scanner.column == 2

    def test_read_until_across_chunks(self):
        scanner = Scanner(io.StringIO("aaa|bbb"), chunk_size=2)
        assert scanner.read_until("|") == "aaa"
        assert scanner.read_until_any("") == "bbb"

    def test_read_until_missing_delimiter_raises(self):
        scanner = Scanner("abc")
        with pytest.raises(XMLSyntaxError):
            scanner.read_until("|", "test")

    def test_read_until_any_stops_at_nearest(self):
        scanner = Scanner("abc&def<ghi")
        assert scanner.read_until_any("<&") == "abc"
        scanner.advance()
        assert scanner.read_until_any("<&") == "def"

    def test_read_name_across_chunks(self):
        scanner = Scanner(io.StringIO("verylongname>"), chunk_size=3)
        assert scanner.read_name() == "verylongname"
        assert scanner.peek() == ">"

    def test_read_name_rejects_bad_start(self):
        scanner = Scanner("1abc")
        with pytest.raises(XMLSyntaxError):
            scanner.read_name()

    def test_try_consume(self):
        scanner = Scanner("<?xml")
        assert scanner.try_consume("<?")
        assert not scanner.try_consume("zzz")
        assert scanner.try_consume("xml")

    def test_skip_whitespace_bulk(self):
        scanner = Scanner("   \n\t x")
        scanner.skip_whitespace()
        assert scanner.peek() == "x"
        assert scanner.line == 2

    def test_compaction_keeps_consuming(self):
        scanner = Scanner(io.StringIO("x" * 100_000 + "|end"), chunk_size=64)
        text = scanner.read_until("|")
        assert len(text) == 100_000
        assert scanner.read_until_any("") == "end"

    def test_read_until_after_buffer_drop_at_eof(self):
        # Regression: when _fill drops a fully-consumed buffer whose length
        # equals the characters left in the stream, the refilled buffer is
        # the same length as before — the no-progress EOF check must use
        # the absolute stream offset, not the buffer length, or it raises
        # a spurious "unexpected end of input" on valid input.
        scanner = Scanner(io.StringIO("abcdefghij>"), chunk_size=4)
        scanner.expect("abcde")
        assert scanner.read_until(">") == "fghij"

    def test_skip_until_after_buffer_drop_at_eof(self):
        scanner = Scanner(io.StringIO("abcdefghij>"), chunk_size=4)
        scanner.expect("abcde")
        scanner.skip_until(">")
        assert scanner.at_eof()

    def test_read_tag_content_after_buffer_drop_at_eof(self):
        scanner = Scanner(io.StringIO("abcdefghij>"), chunk_size=4)
        scanner.expect("abcde")
        assert scanner.read_tag_content() == "fghij"

    def test_missing_delimiter_still_raises_from_stream(self):
        scanner = Scanner(io.StringIO("abcdefghij"), chunk_size=4)
        scanner.expect("abcde")
        with pytest.raises(XMLSyntaxError):
            scanner.read_until(">", "test")
