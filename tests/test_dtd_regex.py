"""Content-model regex and Glushkov automaton tests."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.automaton import GlushkovAutomaton
from repro.dtd.regex import (
    Alt,
    Atom,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Seq,
    Star,
    assign_positions,
    first_set,
    last_set,
    matches,
)


def A(name):
    return Atom(name)


class TestBasics:
    def test_names(self):
        regex = Seq([A("x"), Alt([A("y"), Star(A("z"))])])
        assert regex.names() == {"x", "y", "z"}

    def test_nullable(self):
        assert Epsilon().nullable()
        assert Star(A("x")).nullable()
        assert Opt(A("x")).nullable()
        assert not Plus(A("x")).nullable()
        assert not A("x").nullable()
        assert Seq([Star(A("x")), Opt(A("y"))]).nullable()
        assert not Seq([Star(A("x")), A("y")]).nullable()
        assert Alt([A("x"), Epsilon()]).nullable()
        assert not Empty().nullable()

    def test_structural_equality(self):
        assert Seq([A("x"), A("y")]) == Seq([A("x"), A("y")])
        assert Seq([A("x")]) != Alt([A("x")])
        assert hash(Star(A("x"))) == hash(Star(A("x")))

    def test_first_last_positions(self):
        regex = Seq([Opt(A("a")), A("b"), Star(A("c"))])
        names = {atom.position: atom.name for atom in assign_positions(regex)}
        assert {names[p] for p in first_set(regex)} == {"a", "b"}
        assert {names[p] for p in last_set(regex)} == {"b", "c"}

    def test_str_rendering(self):
        assert str(Seq([A("a"), Opt(A("b"))])) == "(a, b?)"
        assert str(Alt([A("a"), A("b")])) == "(a | b)"


class TestMatching:
    @pytest.mark.parametrize(
        "regex,yes,no",
        [
            (Epsilon(), [[]], [["a"]]),
            (A("a"), [["a"]], [[], ["b"], ["a", "a"]]),
            (Seq([A("a"), A("b")]), [["a", "b"]], [["a"], ["b", "a"]]),
            (Alt([A("a"), A("b")]), [["a"], ["b"]], [[], ["a", "b"]]),
            (Star(A("a")), [[], ["a"], ["a"] * 5], [["b"], ["a", "b"]]),
            (Plus(A("a")), [["a"], ["a", "a"]], [[]]),
            (Opt(A("a")), [[], ["a"]], [["a", "a"]]),
            (
                Seq([A("t"), Plus(A("u")), Opt(A("v"))]),
                [["t", "u"], ["t", "u", "u", "v"]],
                [["t"], ["t", "v"], ["u"]],
            ),
            (Empty(), [], [[], ["a"]]),
        ],
    )
    def test_membership(self, regex, yes, no):
        automaton = GlushkovAutomaton(regex)
        for word in yes:
            assert automaton.matches(word), word
        for word in no:
            assert not automaton.matches(word), word

    def test_same_name_multiple_positions(self):
        # (a, a?) — two positions for 'a'.
        regex = Seq([A("a"), Opt(A("a"))])
        automaton = GlushkovAutomaton(regex)
        assert automaton.matches(["a"])
        assert automaton.matches(["a", "a"])
        assert not automaton.matches(["a", "a", "a"])

    def test_allowed_names_reports_expectations(self):
        automaton = GlushkovAutomaton(Seq([A("a"), A("b")]))
        state = automaton.step(automaton.initial, "a")
        assert automaton.allowed_names(state) == {"b"}

    def test_sink_state_is_empty_frozenset(self):
        automaton = GlushkovAutomaton(A("a"))
        assert automaton.step(automaton.initial, "zz") == frozenset()

    def test_matches_helper(self):
        assert matches(Star(A("x")), ["x", "x"])


# -- property: automaton agrees with a brute-force regex interpreter -----------


def _brute_match(regex, word) -> bool:
    """Reference semantics by direct recursion over small words."""
    if isinstance(regex, Empty):
        return False
    if isinstance(regex, Epsilon):
        return word == ()
    if isinstance(regex, Atom):
        return word == (regex.name,)
    if isinstance(regex, Seq):
        if not regex.items:
            return word == ()
        head, tail = regex.items[0], Seq(regex.items[1:])
        return any(
            _brute_match(head, word[:split]) and _brute_match(tail, word[split:])
            for split in range(len(word) + 1)
        )
    if isinstance(regex, Alt):
        return any(_brute_match(item, word) for item in regex.items)
    if isinstance(regex, Star):
        if word == ():
            return True
        return any(
            _brute_match(regex.inner, word[:split]) and _brute_match(regex, word[split:])
            for split in range(1, len(word) + 1)
        )
    if isinstance(regex, Plus):
        return _brute_match(Seq([regex.inner, Star(regex.inner)]), word)
    if isinstance(regex, Opt):
        return word == () or _brute_match(regex.inner, word)
    raise TypeError(regex)


@st.composite
def regexes(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from([A("a"), A("b"), A("c"), Epsilon()]))
    kind = draw(st.sampled_from(["atom", "seq", "alt", "star", "plus", "opt"]))
    if kind == "atom":
        return draw(st.sampled_from([A("a"), A("b"), A("c")]))
    if kind in ("seq", "alt"):
        items = draw(st.lists(regexes(depth=depth - 1), min_size=1, max_size=3))
        return Seq(items) if kind == "seq" else Alt(items)
    inner = draw(regexes(depth=depth - 1))
    return {"star": Star, "plus": Plus, "opt": Opt}[kind](inner)


@settings(max_examples=150, deadline=None)
@given(regexes(), st.lists(st.sampled_from(["a", "b", "c"]), max_size=4))
def test_automaton_agrees_with_reference_semantics(regex, word):
    assert GlushkovAutomaton(regex).matches(word) == _brute_match(regex, tuple(word))


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_nullable_iff_matches_empty(regex):
    assert regex.nullable() == GlushkovAutomaton(regex).matches([])
