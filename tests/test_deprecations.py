"""The deprecated entry points still work — and warn.

This is the only module allowed to call them; CI runs the rest of the
suite with ``-W error::DeprecationWarning`` to keep internal code off the
old names.
"""

import io

import pytest

from repro import prune
from repro.core.pipeline import analyze, analyze_query, analyze_xquery
from repro.dtd.grammar import text_name
from repro.projection.streaming import (
    prune_events,
    prune_file,
    prune_stream,
    prune_string,
)
from repro.xmltree.parser import parse_events
from tests.conftest import BOOK_XML


@pytest.fixture()
def projector(book_grammar):
    return book_grammar.projector_closure(["title", text_name("title")])


class TestPruneShims:
    def test_prune_string_warns_and_matches_facade(self, book_grammar, projector):
        with pytest.warns(DeprecationWarning, match="prune_string"):
            text, stats = prune_string(BOOK_XML, book_grammar, projector)
        modern = prune(BOOK_XML, book_grammar, projector)
        assert text == modern.text
        assert stats.as_counters() == modern.stats.as_counters()

    def test_prune_stream_warns(self, book_grammar, projector):
        sink = io.StringIO()
        with pytest.warns(DeprecationWarning, match="prune_stream"):
            stats = prune_stream(io.StringIO(BOOK_XML), sink, book_grammar, projector)
        assert stats.bytes_out == len(sink.getvalue()) > 0

    def test_prune_file_warns(self, book_grammar, projector, tmp_path):
        source = tmp_path / "in.xml"
        source.write_text(BOOK_XML)
        target = tmp_path / "out.xml"
        with pytest.warns(DeprecationWarning, match="prune_file"):
            stats = prune_file(str(source), str(target), book_grammar, projector)
        assert target.exists() and stats.bytes_in > stats.bytes_out

    def test_prune_events_warns(self, book_grammar, projector):
        with pytest.warns(DeprecationWarning, match="prune_events"):
            events = prune_events(parse_events(BOOK_XML), book_grammar, projector)
        assert len(list(events)) > 0

    def test_package_still_exports_old_names(self):
        import repro

        for name in ("prune_string", "prune_file", "prune_stream", "prune_events"):
            with pytest.warns(DeprecationWarning, match=name):
                assert getattr(repro, name) is not None


class TestAnalyzeShims:
    def test_analyze_query_warns_and_matches(self, book_grammar):
        with pytest.warns(DeprecationWarning, match="analyze_query"):
            old = analyze_query(book_grammar, "//title")
        assert old == analyze(book_grammar, "//title").projector

    def test_analyze_query_materialize_flag(self, book_grammar):
        with pytest.warns(DeprecationWarning):
            old = analyze_query(book_grammar, "//book", materialize=False)
        assert old == analyze(book_grammar, "//book", materialize=False).projector

    def test_analyze_xquery_warns_and_matches(self, book_grammar):
        query = "for $b in /bib/book return $b/title"
        with pytest.warns(DeprecationWarning, match="analyze_xquery"):
            old = analyze_xquery(book_grammar, query)
        new = analyze(book_grammar, query, language="xquery")
        assert old.projector == new.projector

    def test_analyze_xquery_rewrite_flag(self, book_grammar):
        query = (
            "for $y in /bib//node() return "
            "if ($y/author) then $y/author else ()"
        )
        with pytest.warns(DeprecationWarning):
            old = analyze_xquery(book_grammar, query, rewrite=False)
        assert old.projector == analyze(
            book_grammar, query, language="xquery", rewrite=False
        ).projector

    def test_package_still_exports_old_names(self):
        import repro

        for name in ("analyze_query", "analyze_xquery"):
            with pytest.warns(DeprecationWarning, match=name):
                assert getattr(repro, name) is not None


class TestLoaderShims:
    def test_load_for_queries_warns_and_matches(self, book_grammar):
        from repro.engine.loader import load_for_queries, load_pruned

        with pytest.warns(DeprecationWarning, match="load_for_queries"):
            old = load_for_queries(BOOK_XML, book_grammar, ["//title"])
        projector = analyze(book_grammar, ["//title"]).projector
        new = load_pruned(BOOK_XML, book_grammar, projector)
        assert old.nodes_built == new.nodes_built
        assert old.model_bytes == new.model_bytes

    def test_load_many_for_queries_warns_and_matches(self, book_grammar):
        from repro.engine.loader import load_many, load_many_for_queries

        with pytest.warns(DeprecationWarning, match="load_many_for_queries"):
            old_reports, old_batch = load_many_for_queries(
                [BOOK_XML, BOOK_XML], book_grammar, "//title"
            )
        new_reports, new_batch = load_many(
            [BOOK_XML, BOOK_XML], book_grammar, "//title"
        )
        assert [r.nodes_built for r in old_reports] == [
            r.nodes_built for r in new_reports
        ]
        assert old_batch.succeeded == new_batch.succeeded == 2

    def test_engine_package_still_resolves_old_names(self):
        import repro.engine

        assert repro.engine.load_for_queries is not None
        assert repro.engine.load_many_for_queries is not None


class TestPackageFacadeShims:
    """Every pre-redesign top-level re-export resolves — with a warning
    naming its canonical submodule — and is the same object."""

    def test_legacy_names_warn_and_resolve(self):
        import importlib

        import repro

        for name, home in sorted(repro._DEPRECATED.items()):
            with pytest.warns(DeprecationWarning, match=name):
                value = getattr(repro, name)
            assert value is getattr(importlib.import_module(home), name)

    def test_unknown_names_still_raise(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_name

    def test_legacy_serialize_round_trip(self, book_document):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.xmltree.serializer"):
            markup = repro.serialize(book_document)
        assert "<title>" in markup


class TestAnalysisSecondsCompatibility:
    def test_property_still_readable(self, book_grammar):
        result = analyze(book_grammar, ["//title"])
        assert result.analysis_seconds > 0
