"""Section 5 rewriting-heuristic tests."""

from repro.xpath import ast as xp
from repro.xquery.ast import EmptySequence, ForExpr, IfExpr
from repro.xquery.evaluator import XQueryEvaluator
from repro.xquery.parser import parse_xquery
from repro.xquery.rewrite import rewrite_query
from repro.xmltree.builder import parse_document

DOC = parse_document(
    "<r><a><b>1</b></a><a><b>2</b></a><a><c>3</c></a></r>"
)


def last_step_has_predicate(source) -> bool:
    if isinstance(source, (xp.LocationPath, xp.PathExpr)):
        return bool(source.steps and source.steps[-1].predicates)
    return False


class TestRewriteFires:
    def test_paper_pattern(self):
        query = parse_xquery(
            "for $y in /r//node() return if ($y/b) then <hit/> else ()"
        )
        rewritten = rewrite_query(query)
        assert isinstance(rewritten, ForExpr)
        assert not isinstance(rewritten.body, IfExpr)
        assert last_step_has_predicate(rewritten.source)

    def test_where_clause_is_rewritten_too(self):
        # where desugars to if+else() so the heuristic applies.
        query = parse_xquery("for $y in /r/a where $y/b return $y/b")
        rewritten = rewrite_query(query)
        assert last_step_has_predicate(rewritten.source)

    def test_bare_variable_condition(self):
        query = parse_xquery("for $y in /r/a return if ($y) then 1 else ()")
        rewritten = rewrite_query(query)
        assert last_step_has_predicate(rewritten.source)

    def test_boolean_connectives_convert(self):
        query = parse_xquery(
            "for $y in /r/a where $y/b or $y/c return count($y)"
        )
        rewritten = rewrite_query(query)
        assert last_step_has_predicate(rewritten.source)

    def test_comparison_converts(self):
        query = parse_xquery("for $y in /r/a where $y/b = 1 return count($y)")
        rewritten = rewrite_query(query)
        assert last_step_has_predicate(rewritten.source)

    def test_rewrite_recurses_into_nested_queries(self):
        query = parse_xquery(
            "let $k := for $y in /r/a where $y/b return $y return count($k)"
        )
        rewritten = rewrite_query(query)
        assert last_step_has_predicate(rewritten.value.source)


class TestRewriteDoesNotFire:
    def test_condition_on_other_variable(self):
        query = parse_xquery(
            "for $x in /r/a for $y in /r/a return if ($x/b) then $y else ()"
        )
        rewritten = rewrite_query(query)
        inner = rewritten.body
        assert isinstance(inner, ForExpr)
        assert isinstance(inner.body, IfExpr)  # not pushed into $y's source

    def test_nonempty_else_blocks_rewrite(self):
        query = parse_xquery(
            "for $y in /r/a return if ($y/b) then 1 else 2"
        )
        rewritten = rewrite_query(query)
        assert isinstance(rewritten.body, IfExpr)

    def test_positional_condition_blocks_rewrite(self):
        query = parse_xquery(
            "for $y in /r/a return if (count($y/b) > position()) then 1 else ()"
        )
        rewritten = rewrite_query(query)
        assert isinstance(rewritten.body, IfExpr)

    def test_non_path_source_blocks_rewrite(self):
        query = parse_xquery(
            "for $y in (1, 2) return if ($y) then $y else ()"
        )
        rewritten = rewrite_query(query)
        assert isinstance(rewritten.body, IfExpr)


class TestSemanticsPreserved:
    CASES = [
        "for $y in /r//node() return if ($y/b) then <hit>{$y/b/text()}</hit> else ()",
        "for $y in /r/a where $y/b return $y/b/text()",
        "for $y in /r/a where $y/b = 1 return count($y/b)",
        "for $y in /r/a return if ($y/b or $y/c) then 'x' else ()",
        "for $y in /r/a return if (not($y/b)) then 'none' else ()",
    ]

    def test_rewriting_preserves_results(self):
        evaluator = XQueryEvaluator(DOC)
        for text in self.CASES:
            query = parse_xquery(text)
            rewritten = rewrite_query(query)
            assert (
                XQueryEvaluator(DOC).evaluate_serialized(query)
                == XQueryEvaluator(DOC).evaluate_serialized(rewritten)
            ), text
