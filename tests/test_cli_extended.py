"""CLI tests for the dataguide and depth-adjacent flows added after the
core CLI suite."""

import pytest

from repro.cli import main
from tests.conftest import BOOK_DTD, BOOK_XML


@pytest.fixture()
def workspace(tmp_path):
    dtd = tmp_path / "bib.dtd"
    dtd.write_text(BOOK_DTD)
    xml = tmp_path / "bib.xml"
    xml.write_text(BOOK_XML)
    return tmp_path, str(dtd), str(xml)


class TestInferDTD:
    def test_prune_with_inferred_grammar(self, workspace, capsys):
        tmp_path, _, xml = workspace
        out = str(tmp_path / "pruned.xml")
        code = main(["prune", "--infer-dtd", "--query", "//author", xml, out])
        assert code == 0
        content = open(out).read()
        assert "author" in content and "price" not in content

    def test_run_with_inferred_grammar(self, workspace, capsys):
        _, _, xml = workspace
        assert main(["run", "--infer-dtd", "--query", "//title", xml, "--prune"]) == 0
        assert "results: 3" in capsys.readouterr().out

    def test_analyze_requires_a_document_for_inference(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--infer-dtd", "--query", "//x"])

    def test_inferred_and_declared_prune_agree_on_answers(self, workspace, tmp_path):
        _, dtd, xml = workspace
        declared_out = str(tmp_path / "a.xml")
        inferred_out = str(tmp_path / "b.xml")
        main(["prune", "--dtd", dtd, "--root", "bib", "--query", "//author", xml, declared_out])
        main(["prune", "--infer-dtd", "--query", "//author", xml, inferred_out])
        from repro.xmltree.builder import parse_document
        from repro.xpath.evaluator import XPathEvaluator

        for path in (declared_out, inferred_out):
            document = parse_document(open(path).read())
            names = [n.text_value() for n in XPathEvaluator(document).select("//author")]
            assert names == ["Dante", "Melville", "Dante"]


class TestQueryKindMixing:
    def test_union_of_xpath_and_xquery_on_cli(self, workspace, capsys):
        _, dtd, _ = workspace
        code = main([
            "analyze", "--dtd", dtd, "--root", "bib",
            "--query", "//price",
            "--query", "for $b in /bib/book return $b/title",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "price" in out and "title" in out
