"""The satisfiability pre-pass on trial: every verdict proves itself.

Two layers of evidence:

* a **handcrafted adversarial battery** — grammars built to trip a naive
  emptiness check (recursion without a base case, unrealizable sequence
  edges, τ-live-but-occurrence-dead chains, dead qualifier branches,
  document-node-rooted axes, attributes) with the exact verdict asserted
  for each;
* **Hypothesis properties** over random (grammar, document, query)
  triples — an UNSAT verdict means the query selects *nothing* in any
  valid document (checked against the evaluator), a judged-independent
  update leaves the pruned view byte-identical after the update is
  applied, and verdicts are deterministic (fingerprint-stable) across
  independently built grammars.

Every verdict here is one-sided by design: SAT may be a false positive
(the analysis over-approximates), UNSAT never is.  The battery therefore
asserts UNSAT outcomes exactly and SAT outcomes only where satisfiability
is witnessed by a concrete document.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import prune
from repro.core.pipeline import analyze
from repro.dtd.grammar import grammar_from_text
from repro.dtd.regex import Alt, Atom, Empty, Epsilon, Opt, Plus, Seq, Star
from repro.static.independence import impact_names, independent
from repro.static.sat import (
    classify_path,
    classify_query,
    derivable_names,
    filter_projector,
    occurring_names,
    regex_can_contain,
    regex_can_match,
)
from repro.workloads.randomgen import (
    random_grammar,
    random_pathl,
    random_valid_document,
)
from repro.xmltree.serializer import serialize
from repro.xpath.xpathl import evaluate_pathl, parse_pathl

BIB_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*, price?)>
<!ATTLIST book id CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

BIB_DOC = (
    '<bib><book id="1"><title>T</title><author>A</author>'
    "<price>9</price></book></bib>"
)


def _bib():
    return grammar_from_text(BIB_DTD, "bib")


# -- regex emptiness primitives ----------------------------------------------


def test_regex_can_match_base_cases():
    allowed = frozenset({"a", "b"})
    assert not regex_can_match(Empty(), allowed)
    assert regex_can_match(Epsilon(), allowed)
    assert regex_can_match(Atom("a"), allowed)
    assert not regex_can_match(Atom("c"), allowed)
    assert regex_can_match(Seq((Atom("a"), Atom("b"))), allowed)
    assert not regex_can_match(Seq((Atom("a"), Atom("c"))), allowed)
    assert regex_can_match(Alt((Atom("c"), Atom("b"))), allowed)
    # Star/Opt always admit the empty word, whatever their body needs.
    assert regex_can_match(Star(Atom("c")), allowed)
    assert regex_can_match(Opt(Atom("c")), allowed)
    assert not regex_can_match(Plus(Atom("c")), allowed)
    assert regex_can_match(Plus(Atom("a")), allowed)


def test_regex_can_contain_requires_a_full_word():
    allowed = frozenset({"a", "b"})
    # (a, c): 'a' occurs in the sequence, but no word over {a, b} does —
    # containment demands the *whole* regex still match around the child.
    assert not regex_can_contain(Seq((Atom("a"), Atom("c"))), "a", allowed)
    assert regex_can_contain(Seq((Atom("a"), Atom("b"))), "a", allowed)
    assert regex_can_contain(Alt((Atom("c"), Atom("a"))), "a", allowed)
    assert regex_can_contain(Star(Atom("a")), "a", allowed)
    assert not regex_can_contain(Star(Atom("a")), "c", allowed)


# -- derivability and occurrence ---------------------------------------------


def test_recursion_without_base_case_is_not_derivable():
    grammar = grammar_from_text("<!ELEMENT loop (loop)>", "loop")
    assert "loop" not in derivable_names(grammar)
    # No valid document exists at all, so nothing occurs ...
    assert occurring_names(grammar) == frozenset()
    # ... and every query over the grammar is UNSAT.
    verdict = classify_path(grammar, parse_pathl("child::loop"))
    assert not verdict.satisfiable
    assert "no valid document" in verdict.reason


def test_recursion_with_base_case_is_derivable():
    grammar = grammar_from_text("<!ELEMENT tree ((tree, tree)?)>", "tree")
    assert "tree" in derivable_names(grammar)
    assert "tree" in occurring_names(grammar)


def test_unrealizable_sequence_edge_kills_the_root():
    # 'dead' cannot derive a finite tree, and r *requires* one — so r is
    # itself non-derivable even though 'a' would be fine.
    grammar = grammar_from_text(
        "<!ELEMENT r (a, dead)>"
        "<!ELEMENT a (#PCDATA)>"
        "<!ELEMENT dead (dead)>",
        "r",
    )
    assert "a" in derivable_names(grammar)
    assert "r" not in derivable_names(grammar)
    assert occurring_names(grammar) == frozenset()


def test_tau_live_but_occurrence_dead_chain():
    # b is reachable in the type graph (τ-live via /site/a/b) but never
    # derivable, so it cannot occur in any valid document.
    grammar = grammar_from_text(
        "<!ELEMENT site (a*)>"
        "<!ELEMENT a (b?)>"
        "<!ELEMENT b (b)>",
        "site",
    )
    occ = occurring_names(grammar)
    assert "a" in occ and "b" not in occ
    verdict = classify_path(grammar, parse_pathl("/site/a/b"))
    assert not verdict.satisfiable
    assert "never occur" in verdict.reason
    # The dead name must still not leak into pruned bytes: pruning with
    # the analysis keeps the <a> elements the unfiltered projector keeps.
    analysis = analyze(grammar, "/site/a/b")
    assert not analysis.provably_empty
    doc = "<site><a/><a/></site>"
    assert prune(doc, grammar, analysis).text == prune(
        doc, grammar, analyze(grammar, "/site/a/b", static=False).projector
    ).text


# -- path verdicts ------------------------------------------------------------


def test_dead_step_reports_its_position():
    verdict = classify_path(_bib(), parse_pathl("/bib/zzz"))
    assert not verdict.satisfiable
    assert verdict.tau_empty
    assert "step 2" in verdict.reason


def test_dead_leading_axis_is_unsat():
    for query in ("parent::node()", "ancestor::node()", "attribute::id"):
        verdict = classify_path(_bib(), parse_pathl(query))
        assert not verdict.satisfiable, query
        assert verdict.tau_empty, query


def test_qualifier_branch_verdicts():
    grammar = _bib()
    verdict = classify_path(grammar, parse_pathl("/bib/book[zzz]/title"))
    assert not verdict.satisfiable
    dead = [b for b in verdict.branches if not b.satisfiable]
    assert dead and "zzz" in dead[0].path

    # A disjunction with one live branch keeps the query SAT, but the
    # dead disjunct is still called out.
    verdict = classify_path(
        grammar, parse_pathl("/bib/book[zzz or title]/title")
    )
    assert verdict.satisfiable
    flags = sorted(b.satisfiable for b in verdict.branches)
    assert flags == [False, True]


def test_or_self_axes_and_attributes():
    grammar = _bib()
    sat = classify_path(
        grammar, parse_pathl("descendant-or-self::book/attribute::id")
    )
    assert sat.satisfiable
    unsat = classify_path(
        grammar, parse_pathl("descendant-or-self::book/attribute::nope")
    )
    assert not unsat.satisfiable


def test_classify_query_languages():
    grammar = _bib()
    assert classify_query(grammar, "//title").satisfiable
    assert not classify_query(grammar, "//zzz").satisfiable
    xq = classify_query(
        grammar, 'for $b in /bib/book return <r>{$b/title}</r>'
    )
    assert xq.satisfiable
    dead_xq = classify_query(
        grammar, 'for $b in /bib/zzz return <r>{$b/title}</r>'
    )
    assert not dead_xq.satisfiable


# -- the occurrence filter ----------------------------------------------------


def test_filter_projector_drops_dead_names_and_rechains():
    grammar = grammar_from_text(
        "<!ELEMENT site (a*)>"
        "<!ELEMENT a (b?)>"
        "<!ELEMENT b (b)>",
        "site",
    )
    filtered = filter_projector(grammar, frozenset({"site", "a", "b"}))
    assert filtered == frozenset({"site", "a"})
    # The root survives even a filter that kills everything else.
    dead = grammar_from_text("<!ELEMENT loop (loop)>", "loop")
    assert filter_projector(dead, frozenset({"loop"})) == frozenset({"loop"})


def test_provably_empty_requires_root_only_projector():
    grammar = _bib()
    empty = analyze(grammar, ["/bib/zzz", "//nope"])
    assert empty.all_unsat and empty.provably_empty
    # The short-circuit answers without touching document structure.
    assert prune(BIB_DOC, grammar, empty).text == prune(
        BIB_DOC, grammar, analyze(grammar, ["/bib/zzz", "//nope"], static=False).projector
    ).text
    live = analyze(grammar, ["/bib/zzz", "//title"])
    assert not live.all_unsat and not live.provably_empty


# -- update independence ------------------------------------------------------


def test_independence_handcrafted():
    grammar = _bib()
    projector = analyze(grammar, "//title").projector
    report = independent(grammar, ["/bib/book/price"], projector)
    assert report.independent
    assert not report.overlap
    dependent = independent(grammar, ["/bib/book/title"], projector)
    assert not dependent.independent
    assert "title" in dependent.overlap
    # Impact is the descendant closure: updating book may rewrite titles.
    assert "title" in impact_names(grammar, "/bib/book")
    # An update path that matches nothing is trivially independent.
    assert independent(grammar, ["/bib/zzz"], projector).independent
    assert independent(grammar, [], projector).independent


# -- single-type grammars (XML Schema local elements) -------------------------


def _local_elements_example():
    """The shipped footnote-1 example, loaded verbatim — the pre-pass
    must work on exactly the grammar users see in ``examples/``."""
    import importlib.util
    import pathlib

    path = (
        pathlib.Path(__file__).parent.parent
        / "examples"
        / "xml_schema_local_elements.py"
    )
    spec = importlib.util.spec_from_file_location("local_elements_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_single_type_unsat_verdicts():
    example = _local_elements_example()
    grammar = example.GRAMMAR
    # Book-items carry pages, film-items carry minutes; crossing them is
    # dead — a verdict no DTD could give, since both share the tag <item>.
    for query in (
        "/library/books/item/minutes",
        "/library/films/item/pages",
        "//books/item/minutes",
    ):
        verdict = classify_query(grammar, query)
        assert not verdict.satisfiable, query
    # ... while the straight paths stay live.
    for query in ("//item/title", "//minutes", "/library/books/item/pages"):
        assert classify_query(grammar, query).satisfiable, query
    # No production declares attributes, so every attribute step is dead.
    assert not classify_path(
        grammar, parse_pathl("descendant-or-self::item/attribute::id")
    ).satisfiable


def test_single_type_filter_projector():
    from repro.dtd.singletype import single_type_grammar

    example = _local_elements_example()
    grammar = example.GRAMMAR
    # Every name in the example occurs in some valid document: the
    # occurrence filter must not drop any of them.
    names = frozenset(grammar.productions)
    assert filter_projector(grammar, names) == names
    # A name with no base case is dead even in a single-type grammar.
    looping = single_type_grammar(
        "Lib",
        {
            "Lib": ("library", Seq([Star(Atom("Item")), Star(Atom("Loop"))])),
            "Item": ("item", Epsilon()),
            "Loop": ("loop", Plus(Atom("Loop"))),
        },
    )
    filtered = filter_projector(looping, frozenset({"Lib", "Item", "Loop"}))
    assert filtered == frozenset({"Lib", "Item"})


def test_single_type_prepass_never_changes_pruned_bytes():
    example = _local_elements_example()
    grammar, document = example.GRAMMAR, example.XML
    queries = [
        example.QUERY,                      # live, answers exist
        "/library/books/item/minutes",      # UNSAT cross-type path
        "//item/title",                     # live over both locals
        "/library/zzz",                     # dead tag
    ]
    for query in queries:
        static = analyze(grammar, [query])
        baseline = analyze(grammar, [query], static=False)
        assert (
            prune(document, grammar, static).text
            == prune(document, grammar, baseline.projector).text
        ), query
    # All-UNSAT workloads short-circuit to the root-only view — which must
    # still be byte-identical to what the unanalyzed projector produces.
    empty = analyze(grammar, ["/library/books/item/minutes", "/library/zzz"])
    assert empty.all_unsat and empty.provably_empty
    assert (
        prune(document, grammar, empty).text
        == prune(
            document,
            grammar,
            analyze(
                grammar,
                ["/library/books/item/minutes", "/library/zzz"],
                static=False,
            ).projector,
        ).text
    )


# -- Hypothesis properties ----------------------------------------------------


def _triple(seed: int):
    grammar = random_grammar(seed % 997, allow_recursion=(seed % 3 == 0))
    document = random_valid_document(grammar, seed * 31 + 7)
    pathl = random_pathl(grammar, seed * 13 + 5)
    return grammar, document, pathl


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 20_000))
def test_unsat_queries_select_nothing(seed):
    """Soundness: an UNSAT verdict means zero matches in any valid
    document — checked against the evaluator on a random valid one."""
    grammar, document, pathl = _triple(seed)
    verdict = classify_path(grammar, pathl)
    if not verdict.satisfiable:
        assert evaluate_pathl(document, pathl) == [], (
            f"UNSAT verdict but matches exist: {pathl} ({verdict.reason})"
        )


def _apply_update(document, update_path) -> None:
    """A worst-case update within the path's reach: delete every matched
    element subtree and rewrite every matched text node."""
    for node in list(evaluate_pathl(document, update_path)):
        if node.is_text():
            node.value = node.value + "-updated"
        elif node.is_element() and getattr(node.parent, "children", None):
            if node.parent is not None and node in node.parent.children:
                node.parent.children.remove(node)
    document.renumber()


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 20_000), st.integers(0, 20_000))
def test_independent_updates_leave_pruned_view_identical(seed, update_seed):
    grammar, document, querypath = _triple(seed)
    update_path = random_pathl(grammar, update_seed * 7 + 1)
    projector = analyze(grammar, str(querypath)).projector
    report = independent(grammar, [str(update_path)], projector)
    if not report.independent:
        return
    before = prune(serialize(document), grammar, projector).text
    _apply_update(document, update_path)
    after = prune(serialize(document), grammar, projector).text
    assert after == before, (
        f"judged-independent update changed the pruned view: {update_path}"
    )


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 20_000))
def test_verdicts_are_fingerprint_stable(seed):
    """Two independently built copies of the same grammar give verdicts
    with identical fingerprints (determinism across runs)."""
    first = random_grammar(seed % 997, allow_recursion=(seed % 3 == 0))
    second = random_grammar(seed % 997, allow_recursion=(seed % 3 == 0))
    assert first is not second
    pathl = random_pathl(first, seed * 13 + 5)
    assert (
        classify_path(first, pathl).fingerprint()
        == classify_path(second, pathl).fingerprint()
    )
