"""Figure 1 type-system tests: the paper's worked examples, invariants and
the Theorem 4.4 soundness/completeness properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import Env, TypeInference, infer_type, initial_env
from repro.core.types import TypeOperators
from repro.dtd.grammar import grammar_from_productions
from repro.dtd.properties import analyze_grammar
from repro.dtd.regex import Alt, Atom, Epsilon, Opt, Seq, Star
from repro.dtd.validator import validate
from repro.workloads.randomgen import random_grammar, random_pathl, random_valid_document
from repro.xpath.ast import Axis
from repro.xpath.xpathl import evaluate_pathl, parse_pathl


def A(name):
    return Atom(name)


def section41_grammar():
    """{X -> c[Y,Z], Y -> a[W,String], Z -> b[String], W -> d[Y?]}"""
    return grammar_from_productions(
        "X",
        {
            "X": ("c", Seq([A("Y"), A("Z")])),
            "Y": ("a", Seq([A("W"), A("Ys")])),
            "Z": ("b", A("Zs")),
            "W": ("d", Opt(A("Y"))),
            "Ys": None,
            "Zs": None,
        },
    )


class TestPaperExamples:
    def test_context_makes_upward_axes_precise(self):
        """The Section 4.1 motivating example: the naive composition would
        give {X, W} for self::c/child::a/parent::node; contexts give {X}."""
        grammar = section41_grammar()
        env = infer_type(grammar, parse_pathl("self::c/child::a/parent::node()"))
        assert env.tau == {"X"}

    def test_parent_ambiguous_imprecision_is_as_documented(self):
        """{X -> a[Y,Z], Y -> b[Z], Z -> c[]}: the paper explains the
        inferred type of self::a/child::b/child::c/parent::node is {X, Y}
        though the precise answer is {Y}."""
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("a", Seq([A("Y"), A("Z")])),
                "Y": ("b", A("Z")),
                "Z": ("c", Epsilon()),
            },
        )
        env = infer_type(grammar, parse_pathl("self::a/child::b/child::c/parent::node()"))
        assert env.tau == {"X", "Y"}

    def test_recursion_keeps_names_on_backward_steps(self):
        """{X -> c[Y|Z], Y -> a[Y*, String], Z -> b[String]}: the paper
        explains self::c/child::a/parent::node infers {X, Y} (not {X})."""
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("c", Alt([A("Y"), A("Z")])),
                "Y": ("a", Seq([Star(A("Y")), A("Ys")])),
                "Z": ("b", A("Zs")),
                "Ys": None,
                "Zs": None,
            },
        )
        env = infer_type(grammar, parse_pathl("self::c/child::a/parent::node()"))
        assert env.tau == {"X", "Y"}


class TestRules:
    def test_self_test_filters(self, book_grammar):
        env = infer_type(book_grammar, parse_pathl("self::bib"))
        assert env.tau == {"bib"}
        env = infer_type(book_grammar, parse_pathl("self::book"))
        assert env.tau == frozenset()

    def test_downward_extends_context(self, book_grammar):
        env = infer_type(book_grammar, parse_pathl("child::book/child::title"))
        assert env.tau == {"title"}
        assert env.kappa == {"bib", "book", "title"}

    def test_condition_rule_filters_names(self, book_grammar):
        env = infer_type(book_grammar, parse_pathl("child::book[child::price]"))
        assert env.tau == {"book"}
        env = infer_type(book_grammar, parse_pathl("child::book[child::isbn]"))
        assert env.tau == frozenset()

    def test_disjunctive_condition(self, book_grammar):
        env = infer_type(
            book_grammar, parse_pathl("child::book[child::missing or child::year]")
        )
        assert env.tau == {"book"}

    def test_empty_propagates(self, book_grammar):
        env = infer_type(book_grammar, parse_pathl("child::title/child::book"))
        assert env.is_empty
        assert env.kappa == frozenset()

    def test_attribute_axis(self, book_grammar):
        env = infer_type(book_grammar, parse_pathl("child::book/attribute::isbn"))
        assert env.tau == {"book@isbn"}

    def test_or_self_axes(self, book_grammar):
        env = infer_type(book_grammar, parse_pathl("descendant-or-self::node()"))
        # The descendant axis never reaches attribute names (XPath).
        assert env.tau == book_grammar.names() - book_grammar.attribute_productions()
        env = infer_type(book_grammar, parse_pathl("child::book/ancestor-or-self::node()"))
        assert env.tau == {"bib", "book"}


class TestInvariants:
    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_wellformedness_is_preserved(self, grammar_seed, path_seed):
        """κ ⊆ τ ∪ A_E(τ, ancestor) and τ ⊆ κ after every judgement."""
        grammar = random_grammar(grammar_seed, allow_recursion=grammar_seed % 2 == 0)
        pathl = random_pathl(grammar, path_seed)
        inference = TypeInference(grammar)
        ops = TypeOperators(grammar)
        env = initial_env(grammar)
        for step in pathl.steps:
            env = inference.infer(env, (step,))
            assert env.tau <= env.kappa
            assert env.kappa <= env.tau | ops.axis(env.tau, Axis.ANCESTOR)

    def test_memoisation_returns_equal_results(self, book_grammar):
        inference = TypeInference(book_grammar)
        path = parse_pathl("descendant-or-self::node()/parent::node()")
        first = inference.infer_path(initial_env(book_grammar), path)
        second = inference.infer_path(initial_env(book_grammar), path)
        assert first == second


# -- Theorem 4.4 ------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
def test_theorem_4_4_soundness(grammar_seed, document_seed, path_seed):
    """τ ⊇ ℑ([[P]](root)) for every valid document."""
    grammar = random_grammar(grammar_seed, allow_recursion=grammar_seed % 3 == 0)
    document = random_valid_document(grammar, document_seed, max_depth=10)
    interpretation = validate(document, grammar)
    pathl = random_pathl(grammar, path_seed)

    env = infer_type(grammar, pathl)
    result = evaluate_pathl(document, pathl)
    names = {interpretation[node.node_id] for node in result}
    assert names <= env.tau


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_theorem_4_4_completeness_on_the_class(self_seed, path_seed):
    """On *-guarded, non-recursive, parent-unambiguous grammars, every
    inferred name is witnessed by some valid document (we search over a
    batch of sampled documents; a name never witnessed in many samples
    with forward-only simple paths would indicate incompleteness).

    To keep the check decisive we restrict to condition-free downward
    paths, where witnesses are easy to sample."""
    grammar = random_grammar(self_seed, star_guarded_only=True)
    properties = analyze_grammar(grammar)
    if not properties.completeness_class:
        return  # the theorem does not apply
    pathl = random_pathl(grammar, path_seed, with_conditions=False)
    if any(step.axis in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF) for step in pathl.steps):
        return  # keep the witness search to forward fragments
    env = infer_type(grammar, pathl)
    witnessed: set[str] = set()
    for document_seed in range(40):
        document = random_valid_document(grammar, document_seed)
        interpretation = validate(document, grammar)
        for node in evaluate_pathl(document, pathl):
            witnessed.add(interpretation[node.node_id])
        if witnessed == set(env.tau):
            break
    assert witnessed == set(env.tau)
