"""Single-type (XML Schema-style) grammar tests — footnote 1's extension.

The running example: a library whose <item> elements are *local* — under
<books> an item is a book (title, pages), under <films> an item is a film
(title, minutes).  A DTD cannot express this; a single-type grammar can,
and the whole pipeline (validation, analysis, pruning, streaming) must
distinguish the two item types.
"""

import io

import pytest

from repro.core.pipeline import analyze
from repro.dtd.grammar import Grammar, ElementProduction, TextProduction
from repro.dtd.regex import Atom, Epsilon, Seq, Star
from repro.dtd.singletype import SingleTypeGrammar, single_type_grammar
from repro.dtd.validator import EventValidator, validate
from repro.errors import GrammarError, ValidationError
from repro.api import prune
from repro.projection.tree import prune_document
from repro.xmltree.builder import parse_document
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator


def A(name):
    return Atom(name)


@pytest.fixture(scope="module")
def library():
    """Books and films both use tag <item>, with different content."""
    return single_type_grammar(
        "Lib",
        {
            "Lib": ("library", Seq([Atom("Books"), Atom("Films")])),
            "Books": ("books", Star(A("Book"))),
            "Films": ("films", Star(A("Film"))),
            "Book": ("item", Seq([A("BTitle"), A("Pages")])),
            "Film": ("item", Seq([A("FTitle"), A("Minutes")])),
            "BTitle": ("title", Star(A("BTitleS"))),
            "FTitle": ("title", Star(A("FTitleS"))),
            "Pages": ("pages", Star(A("PagesS"))),
            "Minutes": ("minutes", Star(A("MinutesS"))),
            "BTitleS": None,
            "FTitleS": None,
            "PagesS": None,
            "MinutesS": None,
        },
    )


LIB_XML = (
    "<library>"
    "<books>"
    "<item><title>Moby-Dick</title><pages>635</pages></item>"
    "<item><title>Ulysses</title><pages>730</pages></item>"
    "</books>"
    "<films>"
    "<item><title>Stalker</title><minutes>161</minutes></item>"
    "</films>"
    "</library>"
)


class TestConstruction:
    def test_local_grammar_rejects_duplicate_tags(self):
        with pytest.raises(GrammarError):
            Grammar(
                "x",
                [
                    ElementProduction("x", "r", Seq([A("a"), A("b")])),
                    ElementProduction("a", "same", Epsilon()),
                    ElementProduction("b", "same", Epsilon()),
                ],
            )

    def test_single_type_accepts_local_elements(self, library):
        assert isinstance(library, SingleTypeGrammar)
        assert library.production("Book").tag == library.production("Film").tag == "item"

    def test_single_type_restriction_enforced(self):
        # Two names with the same tag *in one content model* is the
        # regular (non-XSD) class: rejected.
        with pytest.raises(GrammarError):
            single_type_grammar(
                "R",
                {
                    "R": ("r", Seq([A("X"), A("Y")])),
                    "X": ("same", Epsilon()),
                    "Y": ("same", Epsilon()),
                },
            )

    def test_context_resolution(self, library):
        assert library.child_element_name("Books", "item") == "Book"
        assert library.child_element_name("Films", "item") == "Film"
        assert library.child_element_name("Books", "film") is None
        assert library.child_element_name(None, "library") == "Lib"
        assert library.child_element_name(None, "item") is None


class TestValidation:
    def test_interpretation_distinguishes_locals(self, library):
        document = parse_document(LIB_XML)
        interpretation = validate(document, library)
        items = [node for node in document.elements() if node.tag == "item"]
        names = [interpretation[node.node_id] for node in items]
        assert names == ["Book", "Book", "Film"]

    def test_wrong_local_content_rejected(self, library):
        bad = LIB_XML.replace("<minutes>161</minutes>", "<pages>161</pages>")
        with pytest.raises(ValidationError):
            validate(parse_document(bad), library)

    def test_event_validator_resolves_context(self, library):
        validator = EventValidator(library)
        names = []
        for event in parse_events(LIB_XML):
            name = validator.feed(event)
            if name in ("Book", "Film"):
                names.append(name)
        validator.finish()
        assert names == ["Book", "Book", "Film"]


class TestAnalysisAndPruning:
    def test_projector_separates_locals(self, library):
        """//pages lives only under Book items: Film items prune away
        even though they share the tag."""
        result = analyze(library, ["//pages"])
        assert "Book" in result.projector
        assert "Film" not in result.projector

    def test_tree_pruning(self, library):
        document = parse_document(LIB_XML)
        interpretation = validate(document, library)
        result = analyze(library, ["//pages"])
        pruned = prune_document(document, interpretation, result.projector)
        assert "films" not in serialize(pruned) or "<films/>" in serialize(pruned)
        query = "//pages"
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        )

    def test_streaming_pruner_resolves_context(self, library):
        result = analyze(library, ["//minutes"])
        pruned_result = prune(LIB_XML, library, result.projector)
        pruned, stats = pruned_result.text, pruned_result.stats
        # Book items disappear; the film item survives with its minutes.
        assert "Stalker" not in pruned or "<minutes>161</minutes>" in pruned
        assert "pages" not in pruned
        assert pruned.count("<item>") == 1

    def test_streaming_equals_tree(self, library):
        document = parse_document(LIB_XML)
        interpretation = validate(document, library)
        result = analyze(library, ["//minutes"])
        via_tree = serialize(prune_document(document, interpretation, result.projector))
        via_stream = prune(LIB_XML, library, result.projector).text
        assert via_tree == via_stream

    def test_theorem_4_5_on_random_single_type_grammars(self):
        """Soundness fuzz over the XML Schema class: random single-type
        grammars, sampled documents, random paths — pruning never changes
        answers (both pruners)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.projector import infer_projector
        from repro.workloads.randomgen import (
            random_pathl,
            random_single_type_grammar,
            random_valid_document,
        )
        from repro.xpath.xpathl import evaluate_pathl

        @settings(max_examples=120, deadline=None)
        @given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
        def run(grammar_seed, document_seed, path_seed):
            grammar = random_single_type_grammar(grammar_seed)
            document = random_valid_document(grammar, document_seed)
            interpretation = validate(document, grammar)
            pathl = random_pathl(grammar, path_seed)
            projector = infer_projector(grammar, pathl) | {grammar.root}
            pruned = prune_document(document, interpretation, projector)
            original = sorted(n.node_id for n in evaluate_pathl(document, pathl))
            after = sorted(n.node_id for n in evaluate_pathl(pruned, pathl))
            assert original == after
            streamed = prune(serialize(document), grammar, projector).text
            assert streamed == serialize(pruned)

        run()

    def test_local_titles_are_distinct_in_analysis(self, library):
        """Keeping book titles must not keep film titles: the two <title>
        locals have different names."""
        result = analyze(library, ["/library/books/item/title"])
        assert "BTitle" in result.projector
        assert "FTitle" not in result.projector
        document = parse_document(LIB_XML)
        interpretation = validate(document, library)
        pruned = prune_document(document, interpretation, result.projector)
        assert "Stalker" not in serialize(pruned)
        assert "Moby-Dick" in serialize(pruned)
