"""DTD syntax parser tests."""

import pytest

from repro.dtd.ast import AttributeDefaultKind, ContentKind
from repro.dtd.parser import parse_dtd
from repro.dtd.regex import Alt, Atom, Opt, Plus, Seq, Star
from repro.errors import DTDSyntaxError


class TestElementDeclarations:
    def test_empty_and_any(self):
        document = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert document.elements[0].content.kind is ContentKind.EMPTY
        assert document.elements[1].content.kind is ContentKind.ANY

    def test_pcdata_only(self):
        document = parse_dtd("<!ELEMENT t (#PCDATA)>")
        content = document.elements[0].content
        assert content.kind is ContentKind.MIXED
        assert content.mixed_tags == ()

    def test_mixed_content(self):
        document = parse_dtd("<!ELEMENT t (#PCDATA | b | k)*>")
        content = document.elements[0].content
        assert content.kind is ContentKind.MIXED
        assert content.mixed_tags == ("b", "k")

    def test_sequence_model(self):
        document = parse_dtd("<!ELEMENT b (t, a+, y?)>")
        regex = document.elements[0].content.regex
        assert regex == Seq([Atom("t"), Plus(Atom("a")), Opt(Atom("y"))])

    def test_choice_model(self):
        document = parse_dtd("<!ELEMENT d (t | p)>")
        assert document.elements[0].content.regex == Alt([Atom("t"), Atom("p")])

    def test_nested_groups_with_occurrences(self):
        document = parse_dtd("<!ELEMENT x ((a, b)* , (c | d)+)?>")
        regex = document.elements[0].content.regex
        assert regex == Opt(Seq([Star(Seq([Atom("a"), Atom("b")])), Plus(Alt([Atom("c"), Atom("d")]))]))

    def test_single_child_group(self):
        document = parse_dtd("<!ELEMENT x (a)>")
        assert document.elements[0].content.regex == Atom("a")

    def test_mixed_separators_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT x (a, b | c)>")

    def test_comments_and_pis_are_skipped(self):
        document = parse_dtd("<!-- c --><?pi data?><!ELEMENT a EMPTY>")
        assert len(document.elements) == 1


class TestAttlists:
    def test_basic_attlist(self):
        document = parse_dtd(
            "<!ELEMENT a EMPTY>"
            '<!ATTLIST a id ID #REQUIRED kind CDATA #IMPLIED mode (on|off) "on">'
        )
        attrs = document.attlists[0].attributes
        assert [a.name for a in attrs] == ["id", "kind", "mode"]
        assert attrs[0].default_kind is AttributeDefaultKind.REQUIRED
        assert attrs[1].attribute_type == "CDATA"
        assert attrs[2].attribute_type == "(on|off)"
        assert attrs[2].default_value == "on"

    def test_fixed_default(self):
        document = parse_dtd('<!ATTLIST a v CDATA #FIXED "x">')
        attr = document.attlists[0].attributes[0]
        assert attr.default_kind is AttributeDefaultKind.FIXED
        assert attr.default_value == "x"

    def test_gt_inside_quoted_default(self):
        document = parse_dtd('<!ATTLIST a v CDATA "a>b">')
        assert document.attlists[0].attributes[0].default_value == "a>b"


class TestParameterEntities:
    def test_entity_in_content_model(self):
        document = parse_dtd(
            '<!ENTITY % inline "b | k">'
            "<!ELEMENT t (#PCDATA | %inline;)*>"
        )
        assert document.elements[0].content.mixed_tags == ("b", "k")

    def test_entity_referencing_entity(self):
        document = parse_dtd(
            '<!ENTITY % x "a">'
            '<!ENTITY % y "%x;, b">'
            "<!ELEMENT r (%y;)>"
        )
        assert document.elements[0].content.regex == Seq([Atom("a"), Atom("b")])

    def test_undefined_entity_raises(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT r (%nope;)>")

    def test_first_definition_wins(self):
        document = parse_dtd(
            '<!ENTITY % x "a">'
            '<!ENTITY % x "b">'
            "<!ELEMENT r (%x;)>"
        )
        assert document.elements[0].content.regex == Atom("a")

    def test_cyclic_entities_raise(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd('<!ENTITY % x "%y;"><!ENTITY % y "%x;"><!ELEMENT r (%x;)>')


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<!ELEMENT >",
            "<!ELEMENT a (b",
            "<!ELEMENT a b>",
            "<!WHATEVER a>",
            "<!ELEMENT a (#PCDATA | b)>",  # mixed with names needs '*'
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(DTDSyntaxError):
            parse_dtd(bad)


def test_xmark_dtd_parses():
    from repro.workloads.xmark.dtd import XMARK_DTD

    document = parse_dtd(XMARK_DTD)
    tags = document.element_tags()
    assert "site" in tags and "open_auction" in tags and "parlist" in tags
    assert len(tags) > 40
