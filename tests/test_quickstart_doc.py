"""The documented quickstarts must run verbatim.

Regression guard for doc drift: the package docstring and the README
quickstart are extracted *as written* and executed — a signature change
that breaks them breaks this test, not a user.
"""

import os
import pathlib
import re
import textwrap

import repro
from tests.conftest import BOOK_DTD, BOOK_XML


def _docstring_quickstart() -> str:
    """The indented block following ``Quickstart::`` in repro.__doc__."""
    lines = repro.__doc__.splitlines()
    start = next(i for i, line in enumerate(lines) if line.startswith("Quickstart::"))
    block: list[str] = []
    for line in lines[start + 1:]:
        if line.strip() and not line.startswith("    "):
            break
        block.append(line)
    return textwrap.dedent("\n".join(block))


def test_package_docstring_quickstart_runs_verbatim():
    code = _docstring_quickstart()
    assert "analyze" in code and "prune" in code and "extract" in code
    namespace = {"DTD_TEXT": BOOK_DTD, "XML_TEXT": BOOK_XML}
    exec(compile(code, "repro.__doc__", "exec"), namespace)
    # The Dante query keeps titles and authors but not years or prices.
    markup = namespace["pruned"].text
    assert "<title>" in markup and "year" not in markup
    # The extraction flattened every book into a record.
    rows = namespace["rows"]
    assert [row["title"] for row in rows] == [
        "Divina Commedia", "Moby-Dick", "Vita Nova"
    ]
    assert rows[0]["isbn"] == "d1"


def test_readme_quickstart_runs_verbatim(tmp_path, monkeypatch):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(r"## Quickstart\n\n```python\n(.*?)```", readme.read_text(),
                      re.DOTALL)
    assert match, "README has no quickstart code block"
    code = match.group(1)
    # The snippet reads bib.xml from the working directory.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.xml").write_text(BOOK_XML)
    exec(compile(code, str(readme), "exec"), {})


def test_readme_batch_pruning_snippet_runs_verbatim(tmp_path, monkeypatch):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Batch & parallel pruning\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no batch-pruning code block"
    code = match.group(1)
    # The snippet reads bib.dtd and corpus/*.xml from the working
    # directory and writes into pruned/.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.dtd").write_text(BOOK_DTD)
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for i in range(3):
        (corpus / f"doc{i}.xml").write_text(BOOK_XML)
    exec(compile(code, str(readme), "exec"), {})
    pruned = sorted(os.listdir(tmp_path / "pruned"))
    assert pruned == ["doc0.xml", "doc1.xml", "doc2.xml"]
    markup = (tmp_path / "pruned" / "doc0.xml").read_text()
    assert "<title>" in markup and "<price>" not in markup


def test_readme_schemas_beyond_dtd_snippet_runs_verbatim(tmp_path, monkeypatch):
    from tests.test_schema_xsd import BOOK_XSD

    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Schemas beyond DTD\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no schemas-beyond-dtd code block"
    code = match.group(1)
    # The snippet reads bib.xsd, bib.xml and corpus/*.xml from the
    # working directory.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.xsd").write_text(BOOK_XSD)
    (tmp_path / "bib.xml").write_text(BOOK_XML)
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for i in range(3):
        (corpus / f"doc{i}.xml").write_text(BOOK_XML)
    namespace = {}
    exec(compile(code, str(readme), "exec"), namespace)
    # The snippet's asserts are the real checks; confirm the prune bit.
    assert "<author>" not in namespace["pruned"].text
    assert "<title>" in namespace["result"].text


def test_readme_tabular_extraction_snippet_runs_verbatim(tmp_path, monkeypatch):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Tabular extraction\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no tabular-extraction code block"
    code = match.group(1)
    # The snippet reads bib.dtd, bib.xml and corpus/*.xml from the
    # working directory and writes books.csv plus rows/.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.dtd").write_text(BOOK_DTD)
    (tmp_path / "bib.xml").write_text(BOOK_XML)
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for i in range(3):
        (corpus / f"doc{i}.xml").write_text(BOOK_XML)
    exec(compile(code, str(readme), "exec"), {})
    csv_text = (tmp_path / "books.csv").read_text()
    assert csv_text.splitlines()[0] == "title,author,isbn"
    assert "Divina Commedia" in csv_text
    rows = sorted(os.listdir(tmp_path / "rows"))
    assert rows == ["doc0.jsonl", "doc1.jsonl", "doc2.jsonl"]
    assert (tmp_path / "rows" / "doc0.jsonl").read_text().count("\n") == 3


def test_readme_static_short_circuit_snippet_runs_verbatim(
    tmp_path, monkeypatch, capsys
):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Static short-circuiting\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no static-short-circuiting code block"
    code = match.group(1)
    # The snippet reads bib.dtd and bib.xml from the working directory.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.dtd").write_text(BOOK_DTD)
    (tmp_path / "bib.xml").write_text(BOOK_XML)
    exec(compile(code, str(readme), "exec"), {})
    out = capsys.readouterr().out
    # Both verdicts printed, and the dead workload short-circuited to the
    # valid empty result.
    assert re.search(r"SAT\s+/bib/book/title", out)
    assert re.search(r"UNSAT\s+/bib/book/editor", out)
    assert "short-circuited to" in out


def test_readme_documents_the_full_differential_sweep():
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    assert "tests/test_differential.py -m slow" in readme.read_text()


def test_readme_limits_snippet_runs_verbatim(capsys):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Resource limits & hardening\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no resource-limits code block"
    exec(compile(match.group(1), str(readme), "exec"), {})
    out = capsys.readouterr().out
    # The hostile document must be *refused* (for depth), not pruned.
    assert out.startswith("refused: depth")


def test_readme_documents_the_fuzz_battery():
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    assert "tests/test_fuzz_robustness.py -m slow" in text
    assert "--limits-profile" in text


def test_pipeline_docstring_agrees_on_prune_signature():
    """The pipeline quickstart must call prune_document(document,
    interpretation, projector) — the real signature (the grammar is
    *inside* the interpretation)."""
    import inspect

    from repro.core import pipeline
    from repro.projection.tree import prune_document

    parameters = list(inspect.signature(prune_document).parameters)
    assert parameters[:3] == ["document", "interpretation", "projector"]
    call = re.search(r"prune_document\(([^)]*)\)", pipeline.__doc__)
    assert call, "quickstart no longer shows prune_document"
    args = [part.strip() for part in call.group(1).split(",")]
    assert args[:2] == ["document", "interpretation"]


def test_readme_service_snippet_runs_verbatim(tmp_path, monkeypatch, capsys):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Running as a service\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no running-as-a-service code block"
    code = match.group(1)
    # The snippet reads bib.xml and bib.dtd from the working directory.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.xml").write_text(BOOK_XML)
    (tmp_path / "bib.dtd").write_text(BOOK_DTD)
    exec(compile(code, str(readme), "exec"), {})
    out = capsys.readouterr().out
    # The prune shrank the document and the resident cache reported stats.
    assert "-> " in out and "bytes" in out
    assert "hits" in out


def test_readme_documents_the_service_cli():
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    assert "repro-xml serve" in text
    assert "--server 127.0.0.1:8410" in text
    assert "benchmarks/bench_service.py" in text


def test_readme_verifiable_pruning_snippet_runs_verbatim(tmp_path, monkeypatch):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    match = re.search(
        r"## Verifiable pruning\n.*?```python\n(.*?)```",
        readme.read_text(), re.DOTALL,
    )
    assert match, "README has no verifiable-pruning code block"
    code = match.group(1)
    # The snippet reads bib.dtd and bib.xml from the working directory
    # and writes attestations.jsonl (plus its .store/) next to them.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bib.dtd").write_text(BOOK_DTD)
    (tmp_path / "bib.xml").write_text(BOOK_XML)
    namespace = {}
    exec(compile(code, str(readme), "exec"), namespace)
    # The asserts inside the snippet are the real checks; confirm the
    # artifacts it promises actually landed on disk.
    assert (tmp_path / "attestations.jsonl").exists()
    assert namespace["report"].ok


def test_readme_documents_the_ledger_cli():
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    assert "verify-ledger" in text
    assert "serve --ledger" in text
    assert "tests/test_ledger.py" in text
