"""Projector cache: fingerprint stability, hit/miss accounting, LRU
eviction, workload unions, and soundness of cached projectors."""

import pytest

from repro.core.cache import (
    CacheStats,
    ProjectorCache,
    default_cache,
    grammar_fingerprint,
)
from repro.core.pipeline import analyze
from repro.dtd.grammar import grammar_from_text
from tests.conftest import BOOK_DTD


@pytest.fixture()
def cache():
    return ProjectorCache(max_entries=8)


class TestFingerprint:
    def test_equal_for_equal_dtds(self, book_grammar):
        reparsed = grammar_from_text(BOOK_DTD, "bib")
        assert reparsed is not book_grammar
        assert grammar_fingerprint(reparsed) == grammar_fingerprint(book_grammar)

    def test_differs_across_grammars(self, book_grammar, xmark):
        assert grammar_fingerprint(book_grammar) != grammar_fingerprint(xmark[0])

    def test_sensitive_to_content_models(self):
        dtd = "<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>"
        assert grammar_fingerprint(grammar_from_text(dtd, "a")) != grammar_fingerprint(
            grammar_from_text("<!ELEMENT a (b*)><!ELEMENT b EMPTY>", "a")
        )

    def test_memoized_per_instance(self, book_grammar):
        assert grammar_fingerprint(book_grammar) is grammar_fingerprint(book_grammar)


class TestCacheBehaviour:
    def test_repeated_query_hits(self, cache, book_grammar):
        first = cache.projector_for_query(book_grammar, "//book/title")
        second = cache.projector_for_query(book_grammar, "//book/title")
        assert first == second
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_hits_across_grammar_instances(self, cache, book_grammar):
        cache.projector_for_query(book_grammar, "//book/title")
        reparsed = grammar_from_text(BOOK_DTD, "bib")
        cache.projector_for_query(reparsed, "//book/title")
        assert cache.stats.hits == 1

    def test_whitespace_normalization_shares_entries(self, cache, book_grammar):
        cache.projector_for_query(book_grammar, "//book/title")
        cache.projector_for_query(book_grammar, "  //book/title \n")
        assert cache.stats.hits == 1

    def test_literals_suppress_normalization(self, cache, book_grammar):
        cache.projector_for_query(book_grammar, '//book[title=" a  b "]')
        cache.projector_for_query(book_grammar, '//book[title=" a b "]')
        assert cache.stats.hits == 0 and cache.stats.misses == 2

    def test_materialization_flag_keyed(self, cache, book_grammar):
        materialized = cache.projector_for_query(book_grammar, "//book", materialize=True)
        bare = cache.projector_for_query(book_grammar, "//book", materialize=False)
        assert cache.stats.misses == 2
        assert bare <= materialized

    def test_matches_uncached_analysis(self, cache, book_grammar):
        for query in ("//book/title", "//book[author='Dante']", "/bib//price"):
            assert cache.projector_for_query(book_grammar, query) == analyze(
                book_grammar, [query]
            ).projector

    def test_xquery_routed_and_cached(self, cache, book_grammar):
        query = "for $b in /bib/book return $b/author"
        cached = cache.projector_for_query(book_grammar, query)
        assert cached == analyze(book_grammar, [query], language="xquery").projector
        cache.projector_for_query(book_grammar, query)
        assert cache.stats.hits == 1

    def test_lru_eviction(self, book_grammar):
        small = ProjectorCache(max_entries=2)
        small.projector_for_query(book_grammar, "//book/title")
        small.projector_for_query(book_grammar, "//book/author")
        small.projector_for_query(book_grammar, "//book/price")  # evicts title
        assert small.stats.evictions == 1 and len(small) == 2
        small.projector_for_query(book_grammar, "//book/title")  # miss again
        assert small.stats.hits == 0 and small.stats.misses == 4

    def test_clear(self, cache, book_grammar):
        cache.projector_for_query(book_grammar, "//book/title")
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0


class TestWorkloads:
    QUERIES = ["//book/title", "//book/author", "for $b in /bib/book return $b/price"]

    def test_union_covers_every_query(self, cache, book_grammar):
        result = cache.analyze(book_grammar, self.QUERIES)
        for per_query in result.per_query:
            assert per_query <= result.projector
        book_grammar.check_projector(result.projector)

    def test_repeated_workload_is_all_hits(self, cache, book_grammar):
        cache.analyze(book_grammar, self.QUERIES)
        assert cache.stats.hits == 0
        cache.analyze(book_grammar, self.QUERIES)
        assert cache.stats.hits == len(self.QUERIES)
        assert cache.stats.hit_rate == 0.5

    def test_single_string_accepted(self, cache, book_grammar):
        result = cache.analyze(book_grammar, "//book/title")
        assert result.projector == analyze(book_grammar, ["//book/title"]).projector

    def test_workload_union_matches_pipeline(self, cache, book_grammar):
        xpath_only = ["//book/title", "//book/author"]
        assert cache.analyze(book_grammar, xpath_only).projector == analyze(
            book_grammar, xpath_only
        ).projector


class TestStats:
    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict(self):
        stats = CacheStats(hits=3, misses=1)
        snapshot = stats.as_dict()
        assert snapshot["hits"] == 3 and snapshot["hit_rate"] == 0.75


class TestDefaultCache:
    def test_shared_instance(self):
        assert default_cache() is default_cache()

    def test_loader_uses_default_cache(self, book_grammar):
        from repro.engine.loader import load_many
        from tests.conftest import BOOK_XML

        default_cache().clear()
        load_many([BOOK_XML], book_grammar, ["//book/title"])
        before = default_cache().stats.hits
        reports, _ = load_many([BOOK_XML], book_grammar, ["//book/title"])
        assert default_cache().stats.hits == before + 1
        report = reports[0]
        assert {n.tag for n in report.document.elements()} == {"bib", "book", "title"}


class TestConcurrency:
    """The service shares one cache across connections: hammer it from
    many threads and the LRU bookkeeping must never corrupt."""

    def test_threaded_hammer_keeps_the_cache_consistent(self, book_grammar):
        import random
        import threading

        cache = ProjectorCache(max_entries=4)
        queries = ["//title", "//author", "//price", "//year",
                   "/bib/book", "//book", "//book/title", "/bib"]
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    roll = rng.random()
                    if roll < 0.75:
                        projector = cache.projector_for_query(
                            book_grammar, rng.choice(queries)
                        )
                        assert "bib" in projector
                    elif roll < 0.85:
                        cache.analyze(book_grammar, rng.sample(queries, 2))
                    elif roll < 0.95:
                        stats = cache.stats
                        assert stats.hits >= 0 and stats.misses >= 0
                        assert len(cache) <= 4
                    else:
                        cache.clear()
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "cache operation hung"
        assert not errors, errors[:3]
        assert len(cache) <= 4
        # The surviving entries still answer correctly.
        projector = cache.projector_for_query(book_grammar, "//title")
        assert projector == analyze(book_grammar, "//title").projector
