"""Baseline (Marian & Siméon) tests: path degradation, pruning soundness,
and the comparative behaviours the paper describes."""

import pytest

from repro.baselines.marian_simeon import (
    MarianSimeonPruner,
    baseline_paths_for_query,
    prune_with_baseline,
)
from repro.baselines.paths import ProjectionPath, PStep, PStepKind, degrade_pathl
from repro.core.pipeline import analyze
from repro.projection.tree import prune_document
from repro.xpath.xpathl import parse_pathl
from repro.xquery.evaluator import XQueryEvaluator


class TestDegradation:
    def test_child_chain_survives(self):
        degraded = degrade_pathl(parse_pathl("child::a/child::b"))
        assert [step.kind for step in degraded.steps] == [
            PStepKind.CHILD_TAG,
            PStepKind.CHILD_TAG,
        ]
        assert not degraded.keep_subtrees

    def test_predicates_are_dropped(self):
        degraded = degrade_pathl(parse_pathl("child::a[child::cond]/child::b"))
        assert str(degraded) == "/a/b"

    def test_descendant_becomes_anywhere(self):
        degraded = degrade_pathl(parse_pathl("descendant::a"))
        assert [step.kind for step in degraded.steps] == [
            PStepKind.ANYWHERE,
            PStepKind.CHILD_TAG,
        ]

    def test_trailing_dos_node_is_keep_subtree(self):
        degraded = degrade_pathl(parse_pathl("child::a/descendant-or-self::node()"))
        assert degraded.keep_subtrees
        assert len(degraded.steps) == 1

    def test_backward_axis_degenerates(self):
        degraded = degrade_pathl(parse_pathl("child::a/parent::node()/child::b"))
        assert degraded.keep_subtrees
        assert degraded.steps[-1].kind is PStepKind.ANYWHERE

    def test_self_step_is_widened_away(self):
        degraded = degrade_pathl(parse_pathl("child::a/self::a/child::b"))
        assert str(degraded) == "/a/b"

    def test_attribute_stops_the_path(self):
        degraded = degrade_pathl(parse_pathl("child::a/attribute::id"))
        assert str(degraded) == "/a"


class TestBaselinePruning:
    def test_soundness_on_workload(self, xmark):
        grammar, document, interpretation = xmark
        from repro.workloads.xmark import XMARK_QUERIES

        for name in ("QM01", "QM02", "QM06", "QM13", "QM17"):
            query = XMARK_QUERIES[name]
            result = prune_with_baseline(document, baseline_paths_for_query(query))
            original = XQueryEvaluator(document).evaluate_serialized(query)
            after = XQueryEvaluator(result.document).evaluate_serialized(query)
            assert original == after, name

    def test_type_based_is_at_least_as_precise(self, xmark):
        """Paper: 'the amount of pruning on common experiments is always
        equal or better with our approach' (we check on a sample)."""
        grammar, document, interpretation = xmark
        from repro.workloads.xmark import XMARK_QUERIES

        for name in ("QM01", "QM06", "QM07", "QM14"):
            query = XMARK_QUERIES[name]
            ours = prune_document(
                document, interpretation, analyze(grammar, query, language="xquery").projector
            )
            baseline = prune_with_baseline(document, baseline_paths_for_query(query))
            assert ours.size() <= baseline.document.size(), name

    def test_slash_slash_causes_speculation(self, xmark):
        """The '//' cost: speculative (buffered) nodes grow with //-width
        while the type-based pruner buffers nothing by construction."""
        grammar, document, interpretation = xmark
        from repro.workloads.xmark import XMARK_QUERIES

        narrow = prune_with_baseline(
            document, baseline_paths_for_query("/site/people/person/name")
        )
        wide = prune_with_baseline(
            document, baseline_paths_for_query(XMARK_QUERIES["QM07"])
        )
        assert wide.metrics.speculative_nodes > narrow.metrics.speculative_nodes

    def test_condition_degeneration(self, xmark):
        """descendant-or-self + condition: the paper's Section 5 argument —
        the baseline keeps everything, the type-based pipeline does not."""
        grammar, document, interpretation = xmark
        query = (
            "for $y in /site//node() return "
            "if ($y/author = 'nobody') then <r>{$y}</r> else ()"
        )
        baseline = prune_with_baseline(document, baseline_paths_for_query(query))
        ours = prune_document(
            document, interpretation, analyze(grammar, query, language="xquery").projector
        )
        assert baseline.document.size() == document.size()  # no pruning at all
        assert ours.size() < 0.6 * document.size()

    def test_unmatched_paths_keep_bare_root(self, xmark):
        grammar, document, interpretation = xmark
        path = ProjectionPath((PStep(PStepKind.CHILD_TAG, "nonexistent"),))
        result = prune_with_baseline(document, [path])
        assert result.document.size() == 1

    def test_metrics_populated(self, xmark):
        grammar, document, interpretation = xmark
        result = prune_with_baseline(
            document, baseline_paths_for_query("//keyword")
        )
        assert result.metrics.visited_nodes > 0
        assert result.stats.bytes_in > result.stats.bytes_out
