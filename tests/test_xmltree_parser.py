"""Streaming XML parser tests: events, entities, errors, chunking."""

import io

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.builder import parse_document, parse_document_with_doctype
from repro.xmltree.events import (
    Characters,
    Comment,
    Doctype,
    EndDocument,
    EndElement,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmltree.parser import expand_entities, parse_events


def events_of(text, **kwargs):
    return list(parse_events(text, **kwargs))


class TestBasicEvents:
    def test_simple_element_stream(self):
        events = events_of("<a>hi</a>")
        assert events == [
            StartDocument(),
            StartElement("a", {}),
            Characters("hi"),
            EndElement("a"),
            EndDocument(),
        ]

    def test_empty_element_yields_start_end_pair(self):
        events = events_of("<a><b/></a>")
        kinds = [type(event).__name__ for event in events]
        assert kinds == ["StartDocument", "StartElement", "StartElement",
                         "EndElement", "EndElement", "EndDocument"]

    def test_attributes_preserve_order(self):
        events = events_of('<a zeta="1" alpha="2"/>')
        start = events[1]
        assert isinstance(start, StartElement)
        assert list(start.attributes) == ["zeta", "alpha"]

    def test_xml_declaration_is_parsed(self):
        events = events_of("<?xml version='1.1' encoding='UTF-8' standalone='yes'?><a/>")
        assert events[0] == StartDocument(version="1.1", encoding="UTF-8", standalone=True)

    def test_comment_and_pi(self):
        events = events_of("<a><!--note--><?target data?></a>")
        assert Comment("note") in events
        assert ProcessingInstruction("target", "data") in events

    def test_cdata_becomes_characters(self):
        events = events_of("<a><![CDATA[<raw> & stuff]]></a>")
        assert Characters("<raw> & stuff") in events

    def test_whitespace_outside_root_is_ignored(self):
        events = events_of("  <a/>  \n")
        assert isinstance(events[1], StartElement)


class TestEntities:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("&amp;", "&"),
            ("&lt;&gt;", "<>"),
            ("&apos;&quot;", "'\""),
            ("&#65;", "A"),
            ("&#x41;", "A"),
            ("a&amp;b", "a&b"),
        ],
    )
    def test_expand(self, raw, expected):
        assert expand_entities(raw) == expected

    def test_entities_in_text(self):
        events = events_of("<a>x &amp; y</a>")
        assert Characters("x & y") in events

    def test_entities_in_attributes(self):
        events = events_of('<a v="1&lt;2"/>')
        assert events[1].attributes == {"v": "1<2"}

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            events_of("<a>&nosuch;</a>")

    def test_bad_char_reference_raises(self):
        with pytest.raises(XMLSyntaxError):
            events_of("<a>&#xZZ;</a>")


class TestDoctype:
    def test_doctype_with_internal_subset(self):
        document, doctype = parse_document_with_doctype(
            "<!DOCTYPE bib [<!ELEMENT bib (#PCDATA)>]><bib>x</bib>"
        )
        assert doctype is not None
        assert doctype.name == "bib"
        assert "<!ELEMENT bib" in doctype.internal_subset

    def test_doctype_with_system_id(self):
        events = events_of('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
        doctype = next(event for event in events if isinstance(event, Doctype))
        assert doctype.system_id == "a.dtd"

    def test_doctype_with_public_id(self):
        events = events_of('<!DOCTYPE a PUBLIC "pub" "sys"><a/>')
        doctype = next(event for event in events if isinstance(event, Doctype))
        assert (doctype.public_id, doctype.system_id) == ("pub", "sys")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<a>",  # unclosed
            "<a></b>",  # mismatched
            "<a></a></a>",  # extra close
            "<a/><b/>",  # two roots
            "text only",  # no root
            "",  # empty
            "<a a='1' a='2'/>",  # duplicate attribute
            "<a><!-- -- --></a>",  # '--' in comment
            "<a>&unterminated",  # bad entity
            "<a x=1/>",  # unquoted attribute
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLSyntaxError):
            events_of(bad)

    def test_error_carries_position(self):
        try:
            events_of("<a>\n  <b></c></a>")
        except XMLSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")


class TestStreaming:
    def test_tiny_chunks_produce_identical_events(self):
        text = '<?xml version="1.0"?><a x="1&amp;2"><b>hello &lt;world&gt;</b><c/>tail</a>'
        whole = events_of(text)
        chunked = list(parse_events(io.StringIO(text), chunk_size=3))
        assert whole == chunked

    def test_delimiter_straddles_chunk_boundary(self):
        text = "<a><!--" + "x" * 10 + "--><b/></a>"
        assert events_of(text) == list(parse_events(io.StringIO(text), chunk_size=4))

    def test_large_text_run(self):
        payload = "word " * 10_000
        document = parse_document(io.StringIO(f"<a>{payload}</a>"), strip_whitespace=False)
        assert document.root.text_value() == payload
