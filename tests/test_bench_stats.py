"""The shared benchmark statistics helpers and the scale-sweep harness.

``benchmarks/_stats.py`` is what every BENCH report now flows through:
interpolated quantiles (the old per-bench ``round(q * (n - 1))``
nearest-rank picker was biased high on small samples), the normalized
``{"gate": "pass"|"fail"|"skip", "reason": ...}`` records CI consumes,
environment provenance, and the trajectory regression gate.  The e2e
test runs ``benchmarks/scale_sweep.py --smoke`` the way CI does and
checks the report's contract.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "benchmarks"))

import _stats  # noqa: E402


class TestPercentile:
    def test_matches_statistics_inclusive_cut_points(self):
        data = [3.1, 0.2, 9.7, 4.4, 1.5, 8.8, 6.0, 2.2, 7.3, 5.9, 0.9]
        cuts = statistics.quantiles(data, n=100, method="inclusive")
        for k in (1, 5, 25, 50, 75, 95, 99):
            assert _stats.percentile(data, k / 100) == pytest.approx(
                cuts[k - 1]
            )

    def test_interpolates_between_ranks(self):
        # The bias this replaces: nearest-rank picked
        # sorted[round(0.95 * 3)] == 4.0 for [1, 2, 3, 4]; the
        # interpolated p95 sits at rank 2.85, i.e. 3 + 0.85 * (4 - 3).
        assert _stats.percentile([4.0, 2.0, 1.0, 3.0], 0.95) == pytest.approx(
            3.85
        )
        assert _stats.percentile([4.0, 2.0, 1.0, 3.0], 0.50) == pytest.approx(
            2.5
        )

    def test_extremes_and_single_sample(self):
        assert _stats.percentile([5.0, 1.0], 0.0) == 1.0
        assert _stats.percentile([5.0, 1.0], 1.0) == 5.0
        assert _stats.percentile([7.0], 0.95) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            _stats.percentile([], 0.5)
        with pytest.raises(ValueError):
            _stats.percentile([1.0], 1.5)

    def test_median(self):
        assert _stats.median([3.0, 1.0, 2.0]) == 2.0
        assert _stats.median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_summarize_seconds(self):
        summary = _stats.summarize_seconds([float(n) for n in range(1, 101)])
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert _stats.summarize_seconds([]) == {"count": 0}


class TestGates:
    def test_three_statuses(self):
        assert _stats.gate(True, "fine") == {"gate": "pass", "reason": "fine"}
        assert _stats.gate(False, "broke") == {
            "gate": "fail", "reason": "broke",
        }
        assert _stats.gate(None, "1 cpu") == {"gate": "skip", "reason": "1 cpu"}

    def test_failures_lists_only_fails_sorted(self):
        gates = {
            "b": _stats.gate(False, "broke"),
            "a": _stats.gate(False, "also broke"),
            "c": _stats.gate(True, "fine"),
            "d": _stats.gate(None, "skipped"),
        }
        assert _stats.failures(gates) == ["a", "b"]
        assert _stats.failures({}) == []


class TestEnvironment:
    def test_provenance_keys(self):
        env = _stats.environment(xmark_factor=0.5)
        for key in ("commit", "python", "implementation", "platform",
                    "cpu_count", "timestamp"):
            assert key in env
        assert env["xmark_factor"] == 0.5
        assert env["python"] == sys.version.split()[0]
        # Inside this repo the commit resolves to a real hash.
        assert len(env["commit"]) == 40 or env["commit"] == "unknown"


class TestRegressionGate:
    def test_skips_without_history(self):
        record = _stats.regression_gate(1.0, [])
        assert record["gate"] == "skip"
        assert "0 prior" in record["reason"]

    def test_single_prior_point_is_a_skip_not_a_pass(self):
        # One point is no baseline: even a wild outlier must not pass (or
        # fail) the gate — it skips, and says why.
        record = _stats.regression_gate(5.0, [{"p50": 1.0}])
        assert record["gate"] == "skip"
        assert "1 prior" in record["reason"]
        record = _stats.regression_gate(0.1, [{"p50": 1.0}])
        assert record["gate"] == "skip"

    def test_two_prior_points_gate_for_real(self):
        history = [{"p50": 1.0}, {"p50": 1.0}]
        assert _stats.regression_gate(
            1.1, history, tolerance_percent=25.0
        )["gate"] == "pass"
        assert _stats.regression_gate(
            2.0, history, tolerance_percent=25.0
        )["gate"] == "fail"

    def test_passes_within_tolerance(self):
        history = [{"p50": 1.0} for _ in range(5)]
        assert _stats.regression_gate(1.2, history,
                                      tolerance_percent=25.0)["gate"] == "pass"

    def test_fails_beyond_tolerance(self):
        history = [{"p50": 1.0} for _ in range(5)]
        record = _stats.regression_gate(1.5, history, tolerance_percent=25.0)
        assert record["gate"] == "fail"
        assert "p50" in record["reason"]

    def test_compares_against_recent_window_median(self):
        # Old slow entries outside the window must not mask a regression.
        history = [{"p50": 9.0}] * 10 + [{"p50": 1.0}] * 5
        assert _stats.regression_gate(
            2.0, history, tolerance_percent=25.0, window=5
        )["gate"] == "fail"

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trajectory.jsonl")
        assert _stats.read_jsonl(path) == []
        _stats.append_jsonl({"p50": 1.0}, path)
        _stats.append_jsonl({"p50": 2.0}, path)
        assert _stats.read_jsonl(path) == [{"p50": 1.0}, {"p50": 2.0}]


class TestPhaseSelection:
    def test_valid_phase_lists_parse(self):
        import scale_sweep

        assert scale_sweep._phases("documents") == ["documents"]
        assert scale_sweep._phases("corpus, service") == ["corpus", "service"]

    def test_unknown_phase_is_an_argparse_error(self):
        # A typo like "--only document" must error out, not silently run
        # zero phases and exit 0.
        import argparse

        import scale_sweep

        with pytest.raises(argparse.ArgumentTypeError):
            scale_sweep._phases("document")
        with pytest.raises(SystemExit) as excinfo:
            scale_sweep.main(["--smoke", "--only", "document"])
        assert excinfo.value.code == 2


class TestScaleSweepEndToEnd:
    """One tiny real run of the harness, the way CI's scale-smoke job
    invokes it (fresh interpreter, PYTHONPATH=src)."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("scale_sweep")
        output = tmp / "BENCH_scale.json"
        workdir = tmp / "work"
        trajectory = tmp / "trajectory.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        completed = subprocess.run(
            [sys.executable, os.path.join(REPO, "benchmarks", "scale_sweep.py"),
             "--factors", "0.002", "--docs", "4", "--jobs-curve", "1,2",
             "--clients-curve", "1,2", "--requests", "6", "--repeats", "2",
             "--workdir", str(workdir), "--trajectory", str(trajectory),
             "--output", str(output)],
            capture_output=True, text=True, env=env, timeout=560,
        )
        assert completed.returncode == 0, completed.stderr
        assert trajectory.exists()
        return json.loads(output.read_text()), workdir

    def test_report_contract(self, report):
        data, _ = report
        assert data["benchmark"] == "scale_sweep"
        for key in ("commit", "python", "cpu_count", "timestamp"):
            assert key in data["environment"]
        assert data["failures"] == []
        for record in data["gates"].values():
            assert record["gate"] in ("pass", "fail", "skip")
            assert isinstance(record["reason"], str) and record["reason"]

    def test_interpolated_latency_summaries(self, report):
        data, _ = report
        entry = data["documents"]["entries"][0]
        for key in ("count", "mean", "min", "max", "p50", "p95", "p99"):
            assert key in entry["prune"]
        assert entry["prune"]["min"] <= entry["prune"]["p50"] <= entry["prune"]["p95"]
        assert entry["prune"]["p95"] <= entry["prune"]["p99"] <= entry["prune"]["max"]
        point = data["service"]["curve"][0]
        assert point["latency"]["p50"] <= point["latency"]["p99"]

    def test_saturation_curve_shape(self, report):
        data, _ = report
        curve = data["corpus"]["curve"]
        assert [point["jobs"] for point in curve] == [1, 2]
        for point in curve:
            assert point["docs_per_second"] > 0
            assert point["p50_seconds"] > 0
        assert curve[0]["speedup"] == 1.0

    def test_overload_probe_structured(self, report):
        data, _ = report
        overload = data["service"]["overload"]
        assert overload["other"] == 0
        assert overload["refused"] > 0
        assert overload["server_refusals_by_scope"]

    def test_trajectory_regression_gate_recorded(self, report):
        data, _ = report
        assert data["gates"]["trajectory.p50_regression"]["gate"] == "skip"

    def test_kept_outputs_byte_identical_to_facade(self, report):
        from repro.api import prune
        from repro.core.cache import resolve_projector
        from repro.workloads.xmark import xmark_grammar

        data, workdir = report
        grammar = xmark_grammar()
        projector = resolve_projector(grammar, data["queries"])
        doc = workdir / "doc_0.002.xml"
        pruned = workdir / "doc_0.002.pruned.xml"
        assert doc.exists() and pruned.exists()
        expected = prune(str(doc), grammar, projector).text
        assert pruned.read_text(encoding="utf-8") == expected
