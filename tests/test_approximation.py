"""Approximation tests: §3.3 predicate extraction and §4.3 axis rewriting."""

import pytest

from repro.xpath.approximation import approximate_query, rewrite_axis_steps
from repro.xpath.ast import Axis, KindTest, NameTest
from repro.xpath.parser import parse_xpath
from repro.xpath.xpathl import PathL


def approx(query: str) -> PathL:
    return approximate_query(query).main


class TestAxisRewriting:
    def test_following_expands_per_spec_then_approximates(self):
        pairs = rewrite_axis_steps(Axis.FOLLOWING, NameTest("a"))
        axes = [axis for axis, _ in pairs]
        assert axes == [
            Axis.ANCESTOR_OR_SELF,
            Axis.PARENT,
            Axis.CHILD,
            Axis.DESCENDANT_OR_SELF,
        ]
        assert pairs[-1][1] == NameTest("a")

    def test_sibling_becomes_parent_child(self):
        pairs = rewrite_axis_steps(Axis.PRECEDING_SIBLING, NameTest("b"))
        assert pairs == [
            (Axis.PARENT, KindTest("node")),
            (Axis.CHILD, NameTest("b")),
        ]

    def test_xpathl_axes_pass_through(self):
        assert rewrite_axis_steps(Axis.DESCENDANT, KindTest("node")) == [
            (Axis.DESCENDANT, KindTest("node"))
        ]

    def test_rewritten_query_is_pure_xpathl(self):
        result = approx("//a/preceding-sibling::b/following::c")
        from repro.xpath.xpathl import L_AXES

        assert all(step.axis in L_AXES for step in result.steps)


class TestPredicateApproximation:
    def test_structural_predicate_is_kept(self):
        result = approx("descendant::node()[child::a]")
        condition = result.steps[-1].condition
        assert condition is not None
        assert [str(p) for p in condition] == ["child::a"]

    def test_non_structural_adds_self_node(self):
        # The paper: descendant::node[count(child::a) < 5] must keep
        # self::node so the projector is not restricted unsoundly.
        result = approx("descendant::node()[count(child::a) < 5]")
        condition = result.steps[-1].condition
        assert "self::node()" in {str(p) for p in condition}
        assert any("child::a" in str(p) for p in condition)

    def test_not_function_adds_self_node(self):
        result = approx("descendant::node()[not(child::a)]")
        condition = {str(p) for p in result.steps[-1].condition}
        assert "self::node()" in condition
        assert "child::a" in condition

    def test_paper_worked_example(self):
        # [position()>1 and parent::node/book/author="Dante" and year>1313]
        result = approx(
            'a[position() > 1 and parent::node()/book/author = "Dante" and year > 1313]'
        )
        condition = {str(p) for p in result.steps[-1].condition}
        assert "self::node()" in condition  # from position()
        assert any(p.startswith("parent::node()/child::book/child::author") for p in condition)
        assert any(p.startswith("child::year") for p in condition)

    def test_value_comparison_materialises_operand(self):
        # author = "Dante" reads author's string value: the condition path
        # must reach its text (our documented refinement of the paper).
        result = approx('book[author = "Dante"]')
        condition = {str(p) for p in result.steps[-1].condition}
        assert "child::author/descendant-or-self::node()" in condition
        # and no degenerate always-true disjunct:
        assert "self::node()" not in condition

    def test_existence_predicate_needs_no_subtree(self):
        result = approx("book[author]")
        condition = {str(p) for p in result.steps[-1].condition}
        assert condition == {"child::author"}

    def test_attribute_comparison_gets_no_dos_suffix(self):
        result = approx("person[@id = 'p0']")
        condition = {str(p) for p in result.steps[-1].condition}
        assert condition == {"attribute::id"}

    def test_positional_number_predicate(self):
        result = approx("a[3]")
        assert {str(p) for p in result.steps[-1].condition} == {"self::node()"}

    def test_nested_predicates_are_flattened(self):
        result = approx("a[b[c]/d]")
        condition = {str(p) for p in result.steps[-1].condition}
        assert "child::b/child::d" in condition
        assert "child::b/child::c" in condition

    def test_or_predicates_union(self):
        result = approx("a[b or c]")
        condition = {str(p) for p in result.steps[-1].condition}
        assert condition == {"child::b", "child::c"}

    def test_multiple_predicates_merge(self):
        result = approx("a[b][c]")
        condition = {str(p) for p in result.steps[-1].condition}
        assert condition == {"child::b", "child::c"}

    def test_absolute_path_in_predicate_is_hoisted(self):
        approximation = approximate_query("a[/r/config]")
        condition = {str(p) for p in approximation.main.steps[-1].condition}
        assert condition == {"self::node()"}
        assert len(approximation.absolute_paths) == 1
        assert str(approximation.absolute_paths[0]).startswith("/child::r/child::config")

    def test_string_function_materialises(self):
        result = approx("a[contains(string(b), 'x')]")
        condition = {str(p) for p in result.steps[-1].condition}
        assert any("child::b/descendant-or-self::node()" in p for p in condition)


class TestWholeQueries:
    def test_absolute_flag_propagates(self):
        assert approx("/a/b").absolute
        assert not approx("a/b").absolute

    def test_double_slash(self):
        result = approx("//keyword")
        assert str(result) == "/descendant-or-self::node()/child::keyword"

    def test_non_path_rejected(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            approximate_query("1 + 2")

    def test_idempotent_on_xpathl(self):
        text = "descendant::a[child::b or self::node()]/parent::node()"
        once = approx(text)
        again = approximate_query(parse_xpath(str(once))).main
        assert str(once) == str(again)


class TestApproximationSoundness:
    """The approximated query must select a superset-compatible condition:
    wherever the original query selects a node, the approximation's
    condition also holds (weakening).  We check result containment of the
    *filtering skeleton* on sample documents."""

    @pytest.mark.parametrize(
        "query",
        [
            "//book[author = 'Dante']/title",
            "//book[not(author)]/title",
            "//book[count(author) > 1]",
            "//book[author][2]",
        ],
    )
    def test_approximation_is_weaker(self, query, book_document):
        from repro.xpath.evaluator import XPathEvaluator
        from repro.xpath.xpathl import to_xpath

        evaluator = XPathEvaluator(book_document)
        original = {
            node.node_id for node in evaluator.select(query)
        }
        approximated = {
            node.node_id for node in evaluator.select(to_xpath(approx(query)))
        }
        assert original <= approximated
