"""A_E / T_E tests (Definition 4.1) and the Lemma 4.2 soundness property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import TypeOperators
from repro.dtd.grammar import attribute_name, text_name
from repro.dtd.validator import validate
from repro.workloads.randomgen import random_grammar, random_valid_document
from repro.xmltree.nodes import Element, Text
from repro.xpath.ast import Axis, KindTest, NameTest
from repro.xpath.xpathl import LStep, evaluate_steps


class TestAxisOperator:
    def test_self(self, book_grammar):
        ops = TypeOperators(book_grammar)
        assert ops.axis(frozenset({"book"}), Axis.SELF) == {"book"}

    def test_child_excludes_attributes(self, book_grammar):
        ops = TypeOperators(book_grammar)
        children = ops.axis(frozenset({"book"}), Axis.CHILD)
        assert children == {"title", "author", "year", "price"}
        assert attribute_name("book", "isbn") not in children

    def test_attribute_axis(self, book_grammar):
        ops = TypeOperators(book_grammar)
        assert ops.axis(frozenset({"book"}), Axis.ATTRIBUTE) == {attribute_name("book", "isbn")}

    def test_descendant_is_transitive_child_closure(self, book_grammar):
        ops = TypeOperators(book_grammar)
        descendants = ops.axis(frozenset({"bib"}), Axis.DESCENDANT)
        assert text_name("title") in descendants
        assert attribute_name("book", "isbn") not in descendants
        assert "bib" not in descendants

    def test_descendant_or_self(self, book_grammar):
        ops = TypeOperators(book_grammar)
        result = ops.axis(frozenset({"book"}), Axis.DESCENDANT_OR_SELF)
        assert "book" in result and text_name("price") in result

    def test_parent_and_ancestor(self, book_grammar):
        ops = TypeOperators(book_grammar)
        assert ops.axis(frozenset({text_name("title")}), Axis.PARENT) == {"title"}
        assert ops.axis(frozenset({text_name("title")}), Axis.ANCESTOR) == {"title", "book", "bib"}

    def test_recursive_descendant_closure_terminates(self):
        grammar = random_grammar(3, allow_recursion=True)
        ops = TypeOperators(grammar)
        ops.axis(grammar.names(), Axis.DESCENDANT)  # must not hang


class TestTestOperator:
    def test_tag_test(self, book_grammar):
        ops = TypeOperators(book_grammar)
        names = frozenset({"book", "title", text_name("title")})
        assert ops.test(names, NameTest("title")) == {"title"}

    def test_node_test_keeps_everything(self, book_grammar):
        ops = TypeOperators(book_grammar)
        names = frozenset({"book", text_name("title")})
        assert ops.test(names, KindTest("node")) == names

    def test_text_test(self, book_grammar):
        ops = TypeOperators(book_grammar)
        names = frozenset({"book", text_name("title")})
        assert ops.test(names, KindTest("text")) == {text_name("title")}

    def test_element_test(self, book_grammar):
        ops = TypeOperators(book_grammar)
        names = frozenset({"book", text_name("title")})
        assert ops.test(names, KindTest("element")) == {"book"}

    def test_wildcard_excludes_text(self, book_grammar):
        ops = TypeOperators(book_grammar)
        names = frozenset({"book", text_name("title")})
        assert ops.test(names, NameTest(None)) == {"book"}

    def test_attribute_name_test(self, book_grammar):
        ops = TypeOperators(book_grammar)
        names = frozenset({attribute_name("book", "isbn")})
        assert ops.test(names, NameTest("isbn")) == names
        assert ops.test(names, NameTest("other")) == frozenset()

    def test_comment_test_is_empty(self, book_grammar):
        ops = TypeOperators(book_grammar)
        assert ops.test(book_grammar.names(), KindTest("comment")) == frozenset()


class TestContextRestrict:
    def test_restrict_keeps_chains_into_tau(self, book_grammar):
        ops = TypeOperators(book_grammar)
        kappa = frozenset({"bib", "book", "title", "price"})
        restricted = ops.context_restrict(kappa, frozenset({"title"}))
        assert restricted == {"bib", "book", "title"}


# -- Lemma 4.2: single-step typing is sound -----------------------------------

_AXES = st.sampled_from(
    [
        Axis.SELF,
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
    ]
)


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 5_000), st.integers(0, 5_000), _AXES)
def test_lemma_4_2_axis_soundness(grammar_seed, document_seed, axis):
    """If ℑ(S) ⊆ τ then ℑ([[Axis]](S)) ⊆ A_E(τ, Axis)."""
    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)
    ops = TypeOperators(grammar)

    nodes = list(document.iter())
    sample = nodes[:: max(1, len(nodes) // 5)]
    tau = frozenset(interpretation[node.node_id] for node in sample)

    selected = evaluate_steps(sample, (LStep(axis, KindTest("node")),))
    result_names = {interpretation[node.node_id] for node in selected}
    assert result_names <= ops.axis(tau, axis)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 5_000), st.integers(0, 5_000))
def test_lemma_4_2_test_soundness(grammar_seed, document_seed):
    """If ℑ(S) ⊆ τ then ℑ(S :: Test) ⊆ T_E(τ, Test) for every test."""
    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)
    ops = TypeOperators(grammar)

    nodes = list(document.iter())
    tau = frozenset(interpretation[node.node_id] for node in nodes)

    tags = {node.tag for node in nodes if isinstance(node, Element)}
    tests = [KindTest("node"), KindTest("text"), KindTest("element"), NameTest(None)]
    tests += [NameTest(tag) for tag in sorted(tags)]
    for test in tests:
        selected = evaluate_steps(nodes, (LStep(Axis.SELF, test),))
        names = {interpretation[node.node_id] for node in selected}
        assert names <= ops.test(tau, test), test
