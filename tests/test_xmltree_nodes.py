"""Data model tests: Section 2.1 (trees, forests, identifiers, ≼)."""

import pytest

from repro.xmltree.builder import parse_document
from repro.xmltree.nodes import Document, Element, Text, is_projection_of


def build_sample() -> Document:
    root = Element("a")
    b = root.append(Element("b"))
    b.append(Text("one"))
    c = root.append(Element("c", {"k": "v"}))
    c.append(Element("d"))
    root.append(Text("tail"))
    return Document(root)


class TestIdentifiers:
    def test_preorder_ids_are_document_order(self):
        document = build_sample()
        ids = [node.node_id for node in document.iter()]
        assert ids == sorted(ids) == list(range(document.size()))

    def test_ids_are_unique(self):
        document = build_sample()
        assert len(document.ids()) == document.size()

    def test_node_lookup_is_the_at_operator(self):
        document = build_sample()
        for node in document.iter():
            assert document.node(node.node_id) is node

    def test_reindex_rejects_duplicates(self):
        root = Element("a")
        first = root.append(Element("b"))
        second = root.append(Element("b"))
        root.node_id, first.node_id, second.node_id = 0, 1, 1
        with pytest.raises(ValueError):
            Document(root, renumber=False)

    def test_reindex_rejects_missing_ids(self):
        root = Element("a")
        root.append(Element("b"))
        root.node_id = 0  # child keeps -1
        with pytest.raises(ValueError):
            Document(root, renumber=False)


class TestNavigation:
    def test_ancestors_nearest_first(self):
        document = build_sample()
        d = next(node for node in document.elements() if node.tag == "d")
        assert [el.tag for el in d.ancestors()] == ["c", "a"]

    def test_siblings(self):
        document = build_sample()
        c = next(node for node in document.elements() if node.tag == "c")
        assert [getattr(n, "tag", "#text") for n in c.siblings_before()] == ["b"]
        assert [getattr(n, "tag", "#text") for n in c.siblings_after()] == ["#text"]

    def test_descendants_in_document_order(self):
        document = build_sample()
        tags = [getattr(node, "tag", "#t") for node in document.root.descendants()]
        assert tags == ["b", "#t", "c", "d", "#t"]

    def test_root_walks_to_top(self):
        document = build_sample()
        d = next(node for node in document.elements() if node.tag == "d")
        assert d.root() is document.root

    def test_subtree_size(self):
        document = build_sample()
        assert document.root.subtree_size() == document.size() == 6

    def test_find_children_and_first_child(self):
        document = build_sample()
        assert [el.tag for el in document.root.find_children("b")] == ["b"]
        assert document.root.first_child("missing") is None

    def test_text_value_concatenates_descendant_text(self):
        document = parse_document("<a>x<b>y</b>z</a>")
        assert document.root.text_value() == "xyz"


class TestDeepDocuments:
    def test_no_recursion_limit_on_deep_trees(self):
        depth = 5000
        root = Element("n")
        cursor = root
        for _ in range(depth):
            cursor = cursor.append(Element("n"))
        document = Document(root)
        assert document.size() == depth + 1
        assert sum(1 for _ in root.descendants()) == depth


class TestProjectionOrder:
    def test_reflexive(self):
        document = build_sample()
        assert is_projection_of(document.root, document.root)

    def test_dropping_a_subtree_is_a_projection(self, book_document):
        from repro.xmltree.nodes import Element as El

        original = book_document
        clone = parse_document(
            '<bib><book isbn="d1"><title>Divina Commedia</title><author>Dante</author>'
            "<year>1320</year><price>12</price></book></bib>"
        )
        # Align ids with the original prefix so the id check passes.
        for node, other in zip(clone.iter(), original.iter()):
            node.node_id = other.node_id
        assert is_projection_of(clone.root, original.root)

    def test_changed_text_is_not_a_projection(self):
        left = parse_document("<a><b>x</b></a>")
        right = parse_document("<a><b>y</b></a>")
        assert not is_projection_of(left.root, right.root)

    def test_extra_node_is_not_a_projection(self):
        bigger = parse_document("<a><b/><c/></a>")
        smaller = parse_document("<a><b/></a>")
        assert not is_projection_of(bigger.root, smaller.root)

    def test_reordered_children_are_not_a_projection(self):
        left = parse_document("<a><c/><b/></a>")
        right = parse_document("<a><b/><c/></a>")
        left.root.children[0].node_id = -1
        assert not is_projection_of(left.root, right.root)
