"""Projection-service tests: protocol framing, request semantics, admission
control, lifecycle (drain / SIGTERM), crash respawn, and the byte-identity
soak.

The server under test usually runs in-process on a daemon thread
(:func:`repro.service.serve_background`) so internals — the resident pool,
the drain flag — stay reachable for deterministic injection; the SIGTERM
test boots the real ``repro-xml serve`` subprocess, because signal-driven
drain is exactly the part a thread cannot emulate.
"""

from __future__ import annotations

import concurrent.futures
import json
import multiprocessing
import os
import pathlib
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.core.cache import ProjectorCache, resolve_projector
from repro.errors import (
    ProtocolError,
    RemoteError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.limits import Limits
from repro.service import ServiceClient, ServiceConfig, serve_background
from repro.service.protocol import (
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
    stats_from_wire,
    stats_to_wire,
)
from tests.conftest import BOOK_DTD, BOOK_XML

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
QUERY = "//title"
SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def _expected_text(grammar, markup: str, queries=(QUERY,)) -> str:
    """What the serial in-process facade produces for ``markup``."""
    projector = resolve_projector(grammar, list(queries))
    text = repro.prune(markup, grammar, projector).text
    assert text is not None
    return text


@pytest.fixture(scope="module")
def server():
    """One warm in-process server shared by the plain request tests."""
    with serve_background(
        ServiceConfig(port=0, jobs=2), cache=ProjectorCache()
    ) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port) as connection:
        yield connection


# -- protocol framing ---------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        payload = {"id": 7, "op": "health", "nested": {"a": [1, 2]}}
        frame = encode_frame(payload)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == payload

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfenot json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]")

    def test_stats_roundtrip(self, book_grammar):
        projector = resolve_projector(book_grammar, [QUERY])
        stats = repro.prune(BOOK_XML, book_grammar, projector).stats
        assert stats_from_wire(stats_to_wire(stats)) == stats

    def test_garbage_frame_answered_then_connection_dropped(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(struct.pack(">I", 9) + b"not json!")
            response = recv_frame(sock)
            assert response is not None
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert response["error"]["code"] == 400
            # The stream position is unrecoverable: the server hangs up.
            assert recv_frame(sock) is None

    def test_oversized_frame_refused(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(struct.pack(">I", (256 << 20) + 1))
            response = recv_frame(sock)
            assert response is not None and response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"

    def test_unknown_op_is_structured_and_connection_survives(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            send_frame(sock, {"id": 1, "op": "explode"})
            response = recv_frame(sock)
            assert response == {
                "id": 1, "ok": False,
                "error": {"type": "ProtocolError", "code": 400,
                          "message": "unknown operation 'explode'"},
            }
            send_frame(sock, {"id": 2, "op": "health"})
            response = recv_frame(sock)
            assert response is not None and response["ok"] is True

    def test_missing_id_refused(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            send_frame(sock, {"op": "health"})
            response = recv_frame(sock)
            assert response is not None
            assert response["id"] is None and response["ok"] is False

    def test_from_address_validation(self):
        with pytest.raises(ValueError):
            ServiceClient.from_address("no-port-here")


# -- request semantics --------------------------------------------------------


class TestRequests:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "serving"
        assert health["pid"] == os.getpid()

    def test_prune_markup_matches_serial_facade(self, client, book_grammar):
        outcome = client.prune(
            BOOK_XML, dtd=BOOK_DTD, root="bib", queries=[QUERY]
        )
        assert outcome.text == _expected_text(book_grammar, BOOK_XML)
        assert outcome.stats.bytes_in == len(BOOK_XML.encode("utf-8"))
        assert outcome.worker is not None and outcome.worker != os.getpid()

    def test_prune_local_path_is_read_client_side(self, client, book_grammar,
                                                  tmp_path):
        path = tmp_path / "bib.xml"
        path.write_text(BOOK_XML)
        outcome = client.prune(str(path), dtd=BOOK_DTD, root="bib",
                               queries=[QUERY])
        assert outcome.text == _expected_text(book_grammar, BOOK_XML)

    def test_prune_server_side_path_and_out_path(self, client, book_grammar,
                                                 tmp_path):
        src = tmp_path / "bib.xml"
        src.write_text(BOOK_XML)
        out = tmp_path / "pruned.xml"
        outcome = client.prune(
            source_path=str(src), out_path=str(out),
            dtd=BOOK_DTD, root="bib", queries=[QUERY],
        )
        assert outcome.text is None
        assert outcome.output_path == str(out)
        assert out.read_text() == _expected_text(book_grammar, BOOK_XML)

    def test_prune_with_explicit_projector(self, client, book_grammar):
        projector = resolve_projector(book_grammar, [QUERY])
        outcome = client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                               projector=projector)
        assert outcome.text == _expected_text(book_grammar, BOOK_XML)

    def test_prune_xmark_builtin(self, client, xmark):
        grammar, _, _ = xmark
        from repro.workloads.xmark import generate_document
        from repro.xmltree.serializer import serialize

        markup = serialize(generate_document(0.001, seed=3))
        query = "//person/name"
        outcome = client.prune(markup, xmark=True, queries=[query])
        assert outcome.text == _expected_text(grammar, markup, [query])

    def test_analyze_matches_local_analysis(self, client, book_grammar):
        remote = client.analyze([QUERY], dtd=BOOK_DTD, root="bib")
        local = repro.analyze(book_grammar, [QUERY])
        assert remote["projector"] == sorted(local.projector)
        assert remote["per_query_sizes"] == [len(p) for p in local.per_query]

    def test_batch_ordering_and_per_item_errors(self, client, book_grammar):
        good, bad = BOOK_XML, "<bib><book><title>unclosed</bib>"
        batch = client.prune_batch(
            [good, bad, good], dtd=BOOK_DTD, root="bib", queries=[QUERY]
        )
        assert batch.succeeded == 2
        expected = _expected_text(book_grammar, good)
        assert batch.items[0].text == expected
        assert isinstance(batch.items[1], ServiceError)
        assert batch.items[2].text == expected
        # Merged stats only count the items that pruned.
        assert batch.stats.bytes_in == 2 * len(good.encode("utf-8"))

    def test_batch_out_dir_writes_server_side(self, client, tmp_path,
                                              book_grammar):
        sources = []
        for i in range(3):
            path = tmp_path / f"doc{i}.xml"
            path.write_text(BOOK_XML)
            sources.append(str(path))
        out_dir = tmp_path / "pruned"
        batch = client.prune_batch(
            source_paths=sources, out_dir=str(out_dir),
            dtd=BOOK_DTD, root="bib", queries=[QUERY],
        )
        assert batch.succeeded == 3
        expected = _expected_text(book_grammar, BOOK_XML)
        for i in range(3):
            assert (out_dir / f"doc{i}.xml").read_text() == expected

    def test_extract_matches_local_facade(self, client, book_grammar):
        from repro import ExtractSpec, extract

        spec = ExtractSpec(
            rows="/bib/book",
            fields={"title": "title/text()", "isbn": "@isbn"},
        )
        outcome = client.extract(BOOK_XML, spec=spec,
                                 dtd=BOOK_DTD, root="bib")
        local = extract(BOOK_XML, book_grammar, spec)
        assert outcome.text == local.text
        assert outcome.stats.as_dict() == local.stats.as_dict()
        assert outcome.stats.rows_out == 3

    def test_extract_out_path_writes_server_side(self, client, tmp_path,
                                                 book_grammar):
        from repro import ExtractSpec, extract

        spec = ExtractSpec(rows="/bib/book", fields={"t": "title/text()"})
        source = tmp_path / "bib.xml"
        source.write_text(BOOK_XML)
        target = tmp_path / "books.csv"
        outcome = client.extract(
            source_path=str(source), spec=spec, dtd=BOOK_DTD, root="bib",
            options=repro.ExtractOptions(format="csv"),
            out_path=str(target),
        )
        assert outcome.output_path == str(target)
        assert outcome.text is None
        local = extract(str(source), book_grammar, spec, format="csv",
                        out=str(tmp_path / "local.csv"))
        assert target.read_text() == (tmp_path / "local.csv").read_text()

    def test_extract_bad_spec_is_a_protocol_error(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            send_frame(sock, {
                "id": 1, "op": "extract", "source": BOOK_XML,
                "grammar": {"dtd": BOOK_DTD, "root": "bib"},
                "spec": {"rows": "/bib/book",
                         "fields": [["t", "title/text()"]], "bogus": 1},
            })
            response = recv_frame(sock)
            assert response is not None and response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert "bogus" in response["error"]["message"]

    def test_extract_spec_refusal_is_structured(self, client):
        from repro import ExtractSpec

        spec = ExtractSpec(rows="/bib/book", fields={"t": "title/text()"})
        with pytest.raises(RemoteError) as excinfo:
            client.extract("<bib><book></bib>", spec=spec,
                           dtd=BOOK_DTD, root="bib")
        assert excinfo.value.code == 422

    def test_grammar_and_projector_are_resident(self, client):
        before = client.stats()
        client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib", queries=[QUERY])
        client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib", queries=[QUERY])
        after = client.stats()
        # Same DTD text hashes to the same resident grammar...
        assert after["grammars"] == before["grammars"]
        # ...and the repeated workload hits the shared projector cache.
        assert after["cache"]["hits"] >= before["cache"]["hits"] + 2
        assert after["pool"]["pinned"] >= 1

    def test_client_limits_are_enforced_server_side(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib", queries=[QUERY],
                         limits=Limits(max_depth=1))
        assert excinfo.value.remote_type == "LimitExceeded"
        assert excinfo.value.code == 422

    def test_bad_options_rejected_as_protocol_error(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            send_frame(sock, {
                "id": 1, "op": "prune", "source": BOOK_XML,
                "grammar": {"dtd": BOOK_DTD, "root": "bib"},
                "queries": [QUERY], "options": {"warp_speed": True},
            })
            response = recv_frame(sock)
            assert response is not None and response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert "warp_speed" in response["error"]["message"]


def test_client_cannot_relax_the_server_limits_profile():
    """The effective bounds are the intersection: a client asking for a
    looser profile than the server's still hits the server's bound."""
    config = ServiceConfig(port=0, jobs=1, limits=Limits(max_depth=1))
    with serve_background(config, cache=ProjectorCache()) as background:
        with ServiceClient("127.0.0.1", background.port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                             queries=[QUERY], limits="off")
            assert excinfo.value.remote_type == "LimitExceeded"


# -- update independence: retained vs invalidated pins ------------------------


class TestCheckUpdate:
    def test_independent_update_retains_pins(self, book_grammar):
        """A proven-independent update must *retain* the resident worker
        payloads — no unpin, no respawn — while a possibly-dependent one
        invalidates them so the next request re-establishes the state."""
        config = ServiceConfig(port=0, jobs=1)
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                             queries=[QUERY])
                stats = client.stats()
                assert stats["pool"]["pinned"] == 1
                respawns = stats["pool"]["respawns"]

                verdict = client.check_update(
                    "/bib/book/price", dtd=BOOK_DTD, root="bib",
                    queries=[QUERY],
                )
                assert verdict["independent"] is True
                assert verdict["retained"] == 1
                assert verdict["invalidated"] == 0
                assert not verdict["overlap"]
                stats = client.stats()
                assert stats["pool"]["pinned"] == 1  # retained, not dropped
                assert stats["pool"]["respawns"] == respawns
                assert stats["static"] == {
                    "checks": 1, "retained": 1, "invalidated": 0,
                }

                # The retained pin still serves work.
                outcome = client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                       queries=[QUERY])
                assert outcome.text == _expected_text(book_grammar, BOOK_XML)

    def test_dependent_update_invalidates_pins(self, book_grammar):
        config = ServiceConfig(port=0, jobs=1)
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                             queries=[QUERY])
                assert client.stats()["pool"]["pinned"] == 1

                verdict = client.check_update(
                    "/bib/book/title", dtd=BOOK_DTD, root="bib",
                    queries=[QUERY],
                )
                assert verdict["independent"] is False
                assert "title" in verdict["overlap"]
                assert verdict["invalidated"] == 1
                stats = client.stats()
                assert stats["pool"]["pinned"] == 0
                assert stats["static"]["invalidated"] == 1

                # The next request re-pins and still answers correctly.
                outcome = client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                       queries=[QUERY])
                assert outcome.text == _expected_text(book_grammar, BOOK_XML)
                assert client.stats()["pool"]["pinned"] == 1

    def test_check_update_requires_update_paths(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            send_frame(sock, {
                "id": 1, "op": "check_update",
                "grammar": {"dtd": BOOK_DTD, "root": "bib"},
                "queries": [QUERY],
            })
            response = recv_frame(sock)
            assert response is not None and response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert "update_paths" in response["error"]["message"]


# -- admission control --------------------------------------------------------


class _HeldPool:
    """Replaces ``ResidentPool.submit`` with futures the test resolves."""

    def __init__(self, server) -> None:
        self.server = server
        self.futures: list[concurrent.futures.Future] = []
        self._real_submit = server.pool.submit
        server.pool.submit = self._submit  # type: ignore[method-assign]

    def _submit(self, key, source, out_path, options, spec=None):
        future: concurrent.futures.Future = concurrent.futures.Future()
        self.futures.append(future)
        return future

    def wait_for(self, count: int, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while len(self.futures) < count:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"only {len(self.futures)}/{count} requests reached the pool"
                )
            time.sleep(0.005)

    def release_all(self, book_grammar) -> None:
        projector = resolve_projector(book_grammar, [QUERY])
        result = repro.prune(BOOK_XML, book_grammar, projector)
        for future in self.futures:
            future.set_result((None, result, [], {}, 0))


def _prune_frame(req_id: int) -> dict:
    return {
        "id": req_id, "op": "prune", "source": BOOK_XML,
        "grammar": {"dtd": BOOK_DTD, "root": "bib"}, "queries": [QUERY],
    }


class TestAdmission:
    def test_queue_full_is_a_structured_refusal_not_a_hang(self, book_grammar):
        config = ServiceConfig(port=0, jobs=1, queue_limit=0)
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                started = time.monotonic()
                with pytest.raises(ServiceOverloaded) as excinfo:
                    client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                 queries=[QUERY])
                assert time.monotonic() - started < 5.0
                assert excinfo.value.scope == "server"
                assert excinfo.value.code == 429
                # health and stats stay observable while the queue refuses.
                assert client.health()["status"] == "serving"
                stats = client.stats()
                assert stats["refusals"] == 1
                # Refusals are attributed to the admission scope that
                # tripped, so a scale sweep can tell queue pressure from
                # per-connection caps.
                assert stats["refusals_by_scope"] == {"server": 1}

    def test_stats_expose_latency_histogram_and_queue_depth(self, book_grammar):
        config = ServiceConfig(port=0, jobs=1, queue_limit=8)
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                baseline = client.stats()
                assert baseline["latency"] == {"count": 0}
                assert baseline["queue"] == {
                    "depth": 0, "high_water": 0, "limit": 8,
                }
                assert baseline["refusals_by_scope"] == {}

                for _ in range(3):
                    client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                 queries=[QUERY])
                stats = client.stats()
                latency = stats["latency"]
                assert latency["count"] == 3
                assert 0 < latency["min"] <= latency["p50"]
                assert latency["p50"] <= latency["p95"] <= latency["p99"]
                assert latency["p99"] <= latency["max"]
                assert stats["queue"]["depth"] == 0  # nothing in flight now
                assert 1 <= stats["queue"]["high_water"] <= 8

    def test_per_connection_cap_refuses_the_pipelined_request(self, book_grammar):
        config = ServiceConfig(port=0, jobs=1, per_connection=1, queue_limit=64)
        with serve_background(config, cache=ProjectorCache()) as background:
            held = _HeldPool(background.server)
            with socket.create_connection(
                ("127.0.0.1", background.port), timeout=10
            ) as sock:
                send_frame(sock, _prune_frame(1))
                held.wait_for(1)
                send_frame(sock, _prune_frame(2))
                refusal = recv_frame(sock)
                assert refusal is not None
                assert refusal["id"] == 2 and refusal["ok"] is False
                assert refusal["error"]["code"] == 429
                assert refusal["error"]["scope"] == "connection"
                held.release_all(book_grammar)
                response = recv_frame(sock)
                assert response is not None
                assert response["id"] == 1 and response["ok"] is True
                assert response["result"]["text"] == _expected_text(
                    book_grammar, BOOK_XML
                )

    def test_second_connection_unaffected_by_full_one(self, book_grammar):
        config = ServiceConfig(port=0, jobs=1, per_connection=1, queue_limit=64)
        with serve_background(config, cache=ProjectorCache()) as background:
            held = _HeldPool(background.server)
            with socket.create_connection(
                ("127.0.0.1", background.port), timeout=10
            ) as full:
                send_frame(full, _prune_frame(1))
                held.wait_for(1)
                # The cap is per connection: a second client still gets in.
                with socket.create_connection(
                    ("127.0.0.1", background.port), timeout=10
                ) as other:
                    send_frame(other, _prune_frame(7))
                    held.wait_for(2)
                    held.release_all(book_grammar)
                    response = recv_frame(other)
                    assert response is not None and response["ok"] is True
                recv_frame(full)


# -- lifecycle: drain with zero lost in-flight requests -----------------------


def test_drain_finishes_admitted_work_and_refuses_new(book_grammar):
    config = ServiceConfig(port=0, jobs=1)
    background = serve_background(config, cache=ProjectorCache()).start()
    try:
        held = _HeldPool(background.server)
        sock = socket.create_connection(("127.0.0.1", background.port), timeout=10)
        try:
            send_frame(sock, _prune_frame(1))
            held.wait_for(1)

            stopper = threading.Thread(target=background.stop)
            stopper.start()
            deadline = time.monotonic() + 10
            while not background.server._draining:
                assert time.monotonic() < deadline, "drain never started"
                time.sleep(0.005)

            # A frame arriving mid-drain gets a structured 503...
            send_frame(sock, _prune_frame(2))
            refusal = recv_frame(sock)
            assert refusal is not None
            assert refusal["id"] == 2 and refusal["ok"] is False
            assert refusal["error"]["type"] == "ServiceUnavailable"
            assert refusal["error"]["code"] == 503

            # ...while the admitted request is completed, not dropped.
            held.release_all(book_grammar)
            response = recv_frame(sock)
            assert response is not None
            assert response["id"] == 1 and response["ok"] is True
            assert response["result"]["text"] == _expected_text(
                book_grammar, BOOK_XML
            )
            stopper.join(timeout=30)
            assert not stopper.is_alive()
        finally:
            sock.close()
    finally:
        background.stop()


def test_sigterm_drains_the_subprocess_with_zero_lost_requests(book_grammar,
                                                               tmp_path):
    """The real ``repro-xml serve`` process: admit work, SIGTERM, and every
    admitted request must still be answered before a clean exit 0."""
    big_doc = (
        "<bib>"
        + '<book isbn="s1"><title>Siddhartha</title><author>Hesse</author>'
          "<year>1922</year><price>9</price></book>" * 2000
        + "</bib>"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--jobs", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        assert banner.startswith("serving on "), banner
        port = int(banner.rsplit(":", 1)[1])

        sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        try:
            requests = 6
            for i in range(1, requests + 1):
                send_frame(sock, {
                    "id": i, "op": "prune", "source": big_doc,
                    "grammar": {"dtd": BOOK_DTD, "root": "bib"},
                    "queries": [QUERY],
                })
            # A health round trip proves the reader dispatched (admitted)
            # every prune frame before the signal lands.
            send_frame(sock, {"id": 99, "op": "health"})
            responses = {}
            while 99 not in responses:
                frame = recv_frame(sock)
                assert frame is not None
                responses[frame["id"]] = frame

            proc.send_signal(signal.SIGTERM)

            while len(responses) < requests + 1:
                frame = recv_frame(sock)
                assert frame is not None, "connection dropped with work admitted"
                responses[frame["id"]] = frame
        finally:
            sock.close()

        assert proc.wait(timeout=60) == 0
        expected = _expected_text(book_grammar, big_doc)
        for i in range(1, requests + 1):
            assert responses[i]["ok"] is True, responses[i]
            assert responses[i]["result"]["text"] == expected
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        proc.stdout.close()
        proc.stderr.close()


# -- crash respawn ------------------------------------------------------------


@pytest.mark.skipif(not HAS_FORK, reason="crash injection requires fork")
def test_crashed_worker_respawned_without_dropping_connections(
    tmp_path, monkeypatch, book_grammar
):
    """One hostile request kills its worker; the pool respawns, the request
    is retried, and a concurrent connection never notices (the PR 4
    fork-inheritance crash-injection pattern, pointed at the service)."""
    import repro.service.workers as workers

    flag = tmp_path / "crash-once"
    flag.write_text("")
    real = workers._execute_item

    def _crash_once(pruner, options, source, out_path):
        try:
            os.unlink(flag)  # exactly one worker claims the crash
        except FileNotFoundError:
            return real(pruner, options, source, out_path)
        os._exit(13)

    # Fork workers inherit the patched module (the pool spawns processes
    # lazily, on first submit — after this patch).
    monkeypatch.setattr(workers, "_execute_item", _crash_once)

    with serve_background(
        ServiceConfig(port=0, jobs=2), cache=ProjectorCache()
    ) as background:
        outcomes = [None, None]

        def request(slot: int) -> None:
            with ServiceClient("127.0.0.1", background.port, timeout=120) as c:
                outcomes[slot] = c.prune(
                    BOOK_XML, dtd=BOOK_DTD, root="bib", queries=[QUERY]
                )

        threads = [
            threading.Thread(target=request, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "request hung after the crash"

        expected = _expected_text(book_grammar, BOOK_XML)
        assert [outcome.text for outcome in outcomes] == [expected, expected]

        with ServiceClient("127.0.0.1", background.port) as c:
            stats = c.stats()
            assert stats["pool"]["respawns"] >= 1
            assert c.health()["status"] == "serving"
            # The respawned pool serves fresh work normally.
            after = c.prune(BOOK_XML, dtd=BOOK_DTD, root="bib", queries=[QUERY])
            assert after.text == expected


# -- the soak: concurrent clients vs the serial facade ------------------------


def test_soak_concurrent_clients_are_byte_identical_to_the_facade(book_grammar):
    """50 concurrent clients x 20 requests each: every response must be
    byte-identical to the serial :func:`repro.prune` facade and, below the
    admission limit, nothing may be refused."""
    variants = [
        BOOK_XML,
        "<bib><book isbn=\"q1\"><title>Quixote</title><author>Cervantes"
        "</author><year>1605</year></book></bib>",
        "<bib><book><title>Ulysses</title><author>Joyce</author>"
        "<price>30</price></book></bib>",
    ]
    expected = [_expected_text(book_grammar, doc) for doc in variants]
    clients, per_client = 50, 20
    config = ServiceConfig(port=0, jobs=2, queue_limit=64, per_connection=8)
    failures: list[str] = []

    with serve_background(config, cache=ProjectorCache()) as background:

        def hammer(seed: int) -> None:
            try:
                with ServiceClient("127.0.0.1", background.port,
                                   timeout=120) as c:
                    for i in range(per_client):
                        pick = (seed + i) % len(variants)
                        outcome = c.prune(variants[pick], dtd=BOOK_DTD,
                                          root="bib", queries=[QUERY])
                        if outcome.text != expected[pick]:
                            failures.append(
                                f"client {seed} request {i}: output differs"
                            )
                            return
            except Exception as exc:  # refusals below the limit count too
                failures.append(f"client {seed}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "soak client hung"
        assert not failures, failures[:5]

        with ServiceClient("127.0.0.1", background.port) as c:
            stats = c.stats()
            assert stats["refusals"] == 0
            assert stats["requests_served"] >= clients * per_client
            # One grammar, one pinned pruner, and a hot projector cache:
            # the static phase ran once, not once per request.
            assert stats["grammars"] == 1
            assert stats["pool"]["pinned"] == 1
            assert stats["cache"]["misses"] == 1


# -- CLI delegation -----------------------------------------------------------


class TestCliServer:
    def test_prune_via_server_matches_local_cli(self, tmp_path, book_grammar,
                                                capsys):
        from repro.cli import main

        dtd = tmp_path / "bib.dtd"
        dtd.write_text(BOOK_DTD)
        doc = tmp_path / "bib.xml"
        doc.write_text(BOOK_XML)
        local_out = tmp_path / "local.xml"
        remote_out = tmp_path / "remote.xml"

        assert main(["prune", "--dtd", str(dtd), "--root", "bib",
                     "--query", QUERY, str(doc), str(local_out)]) == 0
        with serve_background(
            ServiceConfig(port=0, jobs=1), cache=ProjectorCache()
        ) as background:
            assert main(["prune", "--dtd", str(dtd), "--root", "bib",
                         "--query", QUERY, "--server",
                         f"127.0.0.1:{background.port}",
                         str(doc), str(remote_out)]) == 0
        assert remote_out.read_text() == local_out.read_text()
        assert "pruned via" in capsys.readouterr().out

    def test_batch_prune_via_server(self, tmp_path, book_grammar):
        from repro.cli import main

        dtd = tmp_path / "bib.dtd"
        dtd.write_text(BOOK_DTD)
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for i in range(3):
            (corpus / f"doc{i}.xml").write_text(BOOK_XML)
        out_dir = tmp_path / "pruned"

        with serve_background(
            ServiceConfig(port=0, jobs=2), cache=ProjectorCache()
        ) as background:
            assert main(["prune", "--dtd", str(dtd), "--root", "bib",
                         "--query", QUERY, "--server",
                         f"127.0.0.1:{background.port}",
                         str(corpus), str(out_dir)]) == 0
        expected = _expected_text(book_grammar, BOOK_XML)
        for i in range(3):
            assert (out_dir / f"doc{i}.xml").read_text() == expected

    def test_server_requires_an_explicit_grammar(self, tmp_path):
        from repro.cli import main

        doc = tmp_path / "bib.xml"
        doc.write_text(BOOK_XML)
        with pytest.raises(SystemExit):
            main(["prune", "--infer-dtd", "--query", QUERY,
                  "--server", "127.0.0.1:1", str(doc), str(tmp_path / "o.xml")])


class TestServiceLedger:
    """The server-side attestation ledger: every request recorded, repeat
    requests served from the content-addressed store, and the resulting
    ledger replayable offline with no out-of-band grammar (the request's
    inline DTD rides along in provenance)."""

    def test_prune_recorded_then_served_byte_identically(self, tmp_path,
                                                         book_grammar):
        led = tmp_path / "ledger.jsonl"
        config = ServiceConfig(port=0, jobs=1, ledger=str(led))
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                first = client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                     queries=[QUERY])
                second = client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                      queries=[QUERY])
                assert first.ledger == "recorded"
                assert second.ledger == "hit"
                assert second.text == first.text == _expected_text(
                    book_grammar, BOOK_XML)
                assert second.stats == first.stats
                stats = client.stats()
                assert stats["ledger"] == {
                    "enabled": True, "entries": 1, "hits": 1, "records": 1,
                }

    def test_stats_report_ledger_disabled_without_the_flag(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.stats()["ledger"] == {
                "enabled": False, "entries": 0, "hits": 0, "records": 0,
            }

    def test_extract_recorded_then_served(self, tmp_path, book_grammar):
        from repro import ExtractSpec, extract

        led = tmp_path / "ledger.jsonl"
        spec = ExtractSpec(rows="/bib/book", fields={"title": "title/text()"})
        config = ServiceConfig(port=0, jobs=1, ledger=str(led))
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                first = client.extract(BOOK_XML, spec=spec,
                                       dtd=BOOK_DTD, root="bib")
                second = client.extract(BOOK_XML, spec=spec,
                                        dtd=BOOK_DTD, root="bib")
        assert first.ledger == "recorded" and second.ledger == "hit"
        local = extract(BOOK_XML, book_grammar, spec)
        assert second.text == first.text == local.text
        assert second.stats.as_dict() == local.stats.as_dict()

    def test_server_ledger_replays_offline(self, tmp_path, book_grammar):
        """Entries recorded for *path* sources carry everything replay
        needs — the path, the inline DTD, the projector — so a later
        ``verify-ledger`` run attests them with no server around."""
        from repro.ledger import replay_ledger

        led = tmp_path / "ledger.jsonl"
        src = tmp_path / "bib.xml"
        src.write_text(BOOK_XML)
        out = tmp_path / "pruned.xml"
        config = ServiceConfig(port=0, jobs=1, ledger=str(led))
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                outcome = client.prune(
                    source_path=str(src), out_path=str(out),
                    dtd=BOOK_DTD, root="bib", queries=[QUERY],
                )
                assert outcome.ledger == "recorded"
        report = replay_ledger(str(led))
        assert report.ok and report.attested == report.total == 1

    def test_hit_serves_out_path_without_a_worker(self, tmp_path,
                                                  book_grammar):
        led = tmp_path / "ledger.jsonl"
        src = tmp_path / "bib.xml"
        src.write_text(BOOK_XML)
        config = ServiceConfig(port=0, jobs=1, ledger=str(led))
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                first = client.prune(source_path=str(src),
                                     out_path=str(tmp_path / "a.xml"),
                                     dtd=BOOK_DTD, root="bib",
                                     queries=[QUERY])
                second = client.prune(source_path=str(src),
                                      out_path=str(tmp_path / "b.xml"),
                                      dtd=BOOK_DTD, root="bib",
                                      queries=[QUERY])
                assert second.ledger == "hit"
                assert second.worker is None  # served without pinning a worker
        assert (tmp_path / "a.xml").read_text() == \
            (tmp_path / "b.xml").read_text()

    def test_ledger_survives_an_independent_update(self, tmp_path,
                                                   book_grammar):
        """A proven-independent grammar update keeps the recorded results
        servable — the ledger is content-addressed, so retained pins and
        retained attestations go together."""
        led = tmp_path / "ledger.jsonl"
        config = ServiceConfig(port=0, jobs=1, ledger=str(led))
        with serve_background(config, cache=ProjectorCache()) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                             queries=[QUERY])
                verdict = client.check_update(
                    "/bib/book/price", dtd=BOOK_DTD, root="bib",
                    queries=[QUERY],
                )
                assert verdict["independent"] is True
                outcome = client.prune(BOOK_XML, dtd=BOOK_DTD, root="bib",
                                       queries=[QUERY])
                assert outcome.ledger == "hit"
                stats = client.stats()
                assert stats["ledger"]["entries"] == 1
                assert stats["ledger"]["hits"] == 1
