"""CLI tests driving ``repro-xml`` subcommands through main()."""

import os

import pytest

from repro.cli import main
from tests.conftest import BOOK_DTD, BOOK_XML


@pytest.fixture()
def workspace(tmp_path):
    dtd = tmp_path / "bib.dtd"
    dtd.write_text(BOOK_DTD)
    xml = tmp_path / "bib.xml"
    xml.write_text(BOOK_XML)
    return tmp_path, str(dtd), str(xml)


class TestAnalyze:
    def test_prints_projector(self, workspace, capsys):
        _, dtd, _ = workspace
        code = main(["analyze", "--dtd", dtd, "--root", "bib", "--query", "//title"])
        assert code == 0
        out = capsys.readouterr().out
        assert "title" in out and "bib" in out

    def test_xmark_builtin(self, capsys):
        assert main(["analyze", "--xmark", "--query", "//item/name"]) == 0
        assert "item" in capsys.readouterr().out

    def test_multiple_queries_union(self, workspace, capsys):
        _, dtd, _ = workspace
        main([
            "analyze", "--dtd", dtd, "--root", "bib",
            "--query", "//title", "--query", "//price",
        ])
        out = capsys.readouterr().out
        assert "title" in out and "price" in out

    def test_xquery_detected(self, workspace, capsys):
        _, dtd, _ = workspace
        main([
            "analyze", "--dtd", dtd, "--root", "bib",
            "--query", "for $b in /bib/book return $b/title",
        ])
        assert "title" in capsys.readouterr().out

    def test_missing_dtd_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--query", "//x"])


class TestPrune:
    def test_prunes_file(self, workspace, capsys):
        tmp_path, dtd, xml = workspace
        out_path = str(tmp_path / "pruned.xml")
        code = main([
            "prune", "--dtd", dtd, "--root", "bib",
            "--query", "//author", xml, out_path,
        ])
        assert code == 0
        content = open(out_path).read()
        assert "author" in content and "price" not in content

    def test_validating_prune(self, workspace):
        tmp_path, dtd, xml = workspace
        out_path = str(tmp_path / "pruned.xml")
        assert main([
            "prune", "--dtd", dtd, "--root", "bib",
            "--query", "//author", xml, out_path, "--validate",
        ]) == 0


class TestValidate:
    def test_valid(self, workspace, capsys):
        _, dtd, xml = workspace
        assert main(["validate", "--dtd", dtd, "--root", "bib", xml]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid(self, workspace, tmp_path, capsys):
        _, dtd, _ = workspace
        bad = tmp_path / "bad.xml"
        bad.write_text("<bib><book><author>a</author></book></bib>")
        assert main(["validate", "--dtd", dtd, "--root", "bib", str(bad)]) == 1


class TestGenerateAndRun:
    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "auction.xml")
        assert main(["generate", "--factor", "0.0005", "--output", out]) == 0
        assert os.path.getsize(out) > 1000

    def test_run_with_pruning(self, tmp_path, capsys):
        out = str(tmp_path / "auction.xml")
        main(["generate", "--factor", "0.0005", "--output", out])
        assert main([
            "run", "--xmark", "--query", "//item/name", out, "--prune",
        ]) == 0
        assert "results:" in capsys.readouterr().out

    def test_run_without_pruning(self, workspace, capsys):
        _, dtd, xml = workspace
        assert main(["run", "--dtd", dtd, "--root", "bib", "--query", "//title", xml]) == 0


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro-xml" in out
        assert repro.__version__ in out
