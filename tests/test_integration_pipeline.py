"""Cross-module integration tests: the full pipeline through every door.

Each test walks a different end-to-end route through the system —
file-based, string-based, event-based, DTD'd, DTD-less, local-element —
and checks the invariant that matters: answers never change.
"""

import io
import os

import pytest

from repro.core.pipeline import analyze
from repro.dtd.dataguide import grammar_from_file
from repro.dtd.validator import validate
from repro.engine.loader import load_pruned_validating
from repro.api import prune
from repro.projection.tree import prune_document
from repro.workloads.xmark import generate_file, xmark_grammar
from repro.xmltree.builder import parse_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xquery.evaluator import XQueryEvaluator

QUERY_XPATH = "/site/open_auctions/open_auction[count(bidder) > 2]/reserve"
QUERY_XQUERY = (
    "for $a in /site/closed_auctions/closed_auction "
    "where $a/price > 100 "
    'return <sale price="{$a/price/text()}">{$a/annotation/author}</sale>'
)


@pytest.fixture(scope="module")
def xmark_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("integration") / "auction.xml"
    generate_file(str(path), factor=0.0015, seed=23)
    return str(path)


class TestFileRoutes:
    def test_file_prune_then_query(self, xmark_file, tmp_path):
        grammar = xmark_grammar()
        projector = analyze(grammar, [QUERY_XPATH]).projector
        pruned_path = str(tmp_path / "pruned.xml")
        stats = prune(xmark_file, grammar, projector, out=pruned_path, validate=True).stats
        assert stats.bytes_out < stats.bytes_in

        with open(xmark_file) as handle:
            original = parse_document(handle, strip_whitespace=True)
        with open(pruned_path) as handle:
            pruned = parse_document(handle, strip_whitespace=True)
        original_answers = [
            node.text_value() for node in XPathEvaluator(original).select(QUERY_XPATH)
        ]
        pruned_answers = [
            node.text_value() for node in XPathEvaluator(pruned).select(QUERY_XPATH)
        ]
        assert original_answers == pruned_answers

    def test_loader_route_matches_file_route(self, xmark_file):
        grammar = xmark_grammar()
        projector = analyze(grammar, [QUERY_XPATH]).projector
        with open(xmark_file) as handle:
            report = load_pruned_validating(handle, grammar, projector)
        with open(xmark_file) as handle:
            original = parse_document(handle, strip_whitespace=True)
        assert [n.text_value() for n in XPathEvaluator(report.document).select(QUERY_XPATH)] == [
            n.text_value() for n in XPathEvaluator(original).select(QUERY_XPATH)
        ]

    def test_dataguide_route(self, xmark_file):
        grammar = grammar_from_file(xmark_file)
        with open(xmark_file) as handle:
            document = parse_document(handle, strip_whitespace=True)
        interpretation = validate(document, grammar)
        projector = analyze(grammar, [QUERY_XPATH]).projector
        pruned = prune_document(document, interpretation, projector)
        assert (
            XPathEvaluator(pruned).select_ids(QUERY_XPATH)
            == XPathEvaluator(document).select_ids(QUERY_XPATH)
        )


class TestMixedWorkload:
    def test_xpath_and_xquery_share_one_pruned_document(self, xmark_file):
        grammar = xmark_grammar()
        with open(xmark_file) as handle:
            document = parse_document(handle, strip_whitespace=True)
        interpretation = validate(document, grammar)

        projector = (
            analyze(grammar, [QUERY_XPATH]).projector
            | analyze(grammar, QUERY_XQUERY, language="xquery").projector
        )
        assert grammar.is_projector(projector)
        pruned = prune_document(document, interpretation, projector)

        assert (
            XPathEvaluator(pruned).select_ids(QUERY_XPATH)
            == XPathEvaluator(document).select_ids(QUERY_XPATH)
        )
        assert (
            XQueryEvaluator(pruned).evaluate_serialized(QUERY_XQUERY)
            == XQueryEvaluator(document).evaluate_serialized(QUERY_XQUERY)
        )

    def test_double_pruning_is_stable(self, xmark_file):
        """Pruning a pruned document with the same projector changes
        nothing (idempotence through the whole file pipeline)."""
        from repro.xmltree.serializer import serialize

        grammar = xmark_grammar()
        projector = analyze(grammar, [QUERY_XPATH]).projector
        with open(xmark_file) as handle:
            document = parse_document(handle, strip_whitespace=True)
        interpretation = validate(document, grammar)
        once = prune_document(document, interpretation, projector)
        twice = prune_document(once, interpretation, projector)
        assert serialize(once) == serialize(twice)
