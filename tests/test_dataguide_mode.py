"""First-class schemaless inference: determinism, policies, wiring.

Three contracts under test:

* **determinism** (property-pinned) — the same corpus sample in any
  ingestion order yields a byte-identical grammar fingerprint; the
  fingerprint keys the projector cache, resident-worker pins and the
  attestation ledger, so order-dependence would poison all three;
* **the escape hatch** — Theorem 4.5 soundness only covers documents
  the grammar accepts, so a document that strays from the sample is
  *never* pruned as if it validated: ``on_stray="error"`` refuses with
  the structured :class:`~repro.errors.StrayDocumentError`,
  ``on_stray="copy"`` emits the input verbatim (marked ``stray``) —
  under neither policy can wrong bytes come out;
* **wiring** — the facades, batch mode, CLI and service all route
  inferred grammars through the same escape hatch.
"""

from __future__ import annotations

import io
import itertools
import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import InferredGrammar, StrayDocumentError, infer_grammar
from repro.core.cache import grammar_fingerprint, resolve_projector
from repro.dtd.dataguide import DataguideBuilder
from repro.errors import ReproError
from repro.extract.spec import ExtractSpec
from repro.loading import load_grammar
from repro.xmltree.parser import parse_events
from tests.conftest import BOOK_DTD, BOOK_XML

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SAMPLE = [
    '<bib><book isbn="1"><title>T1</title><author>A</author></book></bib>',
    "<bib><book><title>T2</title><author>B</author><author>C</author></book></bib>",
    "<bib></bib>",
    '<bib><book isbn="2"><title>T3</title></book></bib>',
]

STRAY_ELEMENT = "<bib><book><title>T</title><pages>9</pages></book></bib>"
STRAY_ATTRIBUTE = '<bib><book flavour="x"><title>T</title></book></bib>'
STRAY_TEXT = "<bib>loose text<book><title>T</title></book></bib>"


@pytest.fixture(scope="module")
def sample_grammar():
    return infer_grammar(SAMPLE)


# -- determinism (property-pinned) --------------------------------------------


class TestDeterminism:
    def test_all_ingestion_orders_one_fingerprint(self):
        fingerprints = {
            grammar_fingerprint(infer_grammar(list(order)))
            for order in itertools.permutations(SAMPLE)
        }
        assert len(fingerprints) == 1

    @given(order=st.permutations(SAMPLE))
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_is_order_independent(self, order):
        assert grammar_fingerprint(infer_grammar(order)) == grammar_fingerprint(
            infer_grammar(SAMPLE)
        )

    @given(order=st.permutations(SAMPLE))
    @settings(max_examples=20, deadline=None)
    def test_materialise_is_order_independent(self, order):
        """The builder primitive itself (not just the hash): same root,
        same production names, same serialized productions."""
        from repro.schema.wire import grammar_to_wire

        builders = []
        for docs in (order, SAMPLE):
            builder = DataguideBuilder()
            for doc in docs:
                builder.add_events(parse_events(doc))
            builders.append(builder.materialise())
        (root_a, prods_a), (root_b, prods_b) = builders
        assert root_a == root_b
        assert grammar_to_wire(
            InferredGrammar(root_a, prods_a)
        ) == grammar_to_wire(InferredGrammar(root_b, prods_b))

    def test_file_and_markup_ingestion_agree(self, tmp_path):
        for index, doc in enumerate(SAMPLE):
            (tmp_path / f"doc{index}.xml").write_text(doc)
        via_dir = infer_grammar(str(tmp_path))
        via_glob = infer_grammar(str(tmp_path / "*.xml"))
        via_markup = infer_grammar(SAMPLE)
        assert (
            grammar_fingerprint(via_dir)
            == grammar_fingerprint(via_glob)
            == grammar_fingerprint(via_markup)
        )
        assert via_dir.sample_count == len(SAMPLE)

    def test_policies_never_share_a_fingerprint(self):
        strict = infer_grammar(SAMPLE, on_stray="error")
        lax = infer_grammar(SAMPLE, on_stray="copy")
        assert grammar_fingerprint(strict) != grammar_fingerprint(lax)


# -- construction -------------------------------------------------------------


class TestConstruction:
    def test_source_forms(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(BOOK_XML)
        assert infer_grammar(BOOK_XML).root == "bib"
        assert infer_grammar(str(path)).root == "bib"
        with open(path, "r", encoding="utf-8") as handle:
            assert infer_grammar(handle).root == "bib"
        mixed = infer_grammar([BOOK_XML, str(path)])
        assert mixed.sample_count == 2

    def test_empty_sample_refuses(self, tmp_path):
        with pytest.raises(ReproError, match="empty sample"):
            infer_grammar([])
        with pytest.raises(ReproError, match="empty sample"):
            infer_grammar(str(tmp_path / "*.xml"))

    def test_bad_policy_refuses(self):
        with pytest.raises(ReproError, match="on_stray"):
            infer_grammar(SAMPLE, on_stray="shrug")

    def test_load_grammar_infer_dispatch(self):
        grammar = load_grammar(SAMPLE[0], infer=True, on_stray="copy")
        assert isinstance(grammar, InferredGrammar)
        assert grammar.on_stray == "copy"
        with pytest.raises(ReproError, match="format"):
            load_grammar(SAMPLE[0], format="xml", infer=True)

    def test_inferred_accepts_every_sample_document(self, sample_grammar):
        projector = resolve_projector(sample_grammar, ["//title"])
        for doc in SAMPLE:
            result = repro.prune(doc, sample_grammar, projector)
            assert not result.stray


# -- the escape hatch ---------------------------------------------------------


class TestErrorPolicy:
    @pytest.mark.parametrize(
        "stray", [STRAY_ELEMENT, STRAY_ATTRIBUTE, STRAY_TEXT]
    )
    def test_strays_raise_structured(self, sample_grammar, stray):
        projector = resolve_projector(sample_grammar, ["//title"])
        with pytest.raises(StrayDocumentError) as excinfo:
            repro.prune(stray, sample_grammar, projector)
        assert "strays" in str(excinfo.value)
        assert 'on_stray="copy"' in str(excinfo.value)

    def test_stray_attribute_never_silently_dropped(self, sample_grammar):
        # The wrong-bytes hazard this policy exists for: without the
        # attribute check the pruner would emit <book> minus flavour=.
        projector = resolve_projector(
            sample_grammar, ["//book", "//title", "//author"]
        )
        with pytest.raises(StrayDocumentError):
            repro.prune(STRAY_ATTRIBUTE, sample_grammar, projector)

    def test_file_output_not_left_behind(self, sample_grammar, tmp_path):
        projector = resolve_projector(sample_grammar, ["//title"])
        src = tmp_path / "stray.xml"
        src.write_text(STRAY_ELEMENT)
        out = tmp_path / "out.xml"
        with pytest.raises(StrayDocumentError):
            repro.prune(str(src), sample_grammar, projector, out=str(out))
        assert not out.exists()

    def test_event_source_strays_lazily(self, sample_grammar):
        projector = resolve_projector(sample_grammar, ["//title"])
        result = repro.prune(
            parse_events(STRAY_ELEMENT), sample_grammar, projector
        )
        with pytest.raises(StrayDocumentError):
            list(result.events)

    def test_extract_prevalidates(self, sample_grammar):
        spec = ExtractSpec(rows="/bib/book", fields={"title": "title/text()"})
        with pytest.raises(StrayDocumentError):
            repro.extract(STRAY_ELEMENT, sample_grammar, spec)
        # Accepted documents extract exactly as under the DTD grammar.
        from repro.dtd.grammar import grammar_from_text

        dtd_grammar = grammar_from_text(BOOK_DTD, "bib")
        inferred = infer_grammar(BOOK_XML)
        assert (
            repro.extract(BOOK_XML, inferred, spec).records
            == repro.extract(BOOK_XML, dtd_grammar, spec).records
        )

    def test_extract_refuses_event_sources(self, sample_grammar):
        spec = ExtractSpec(rows="/bib/book", fields={"title": "title/text()"})
        with pytest.raises(ReproError, match="replayable"):
            repro.extract(parse_events(SAMPLE[0]), sample_grammar, spec)


class TestCopyPolicy:
    @pytest.fixture(scope="class")
    def lax(self):
        return infer_grammar(SAMPLE, on_stray="copy")

    @pytest.mark.parametrize(
        "stray", [STRAY_ELEMENT, STRAY_ATTRIBUTE, STRAY_TEXT]
    )
    def test_strays_copy_verbatim(self, lax, stray):
        projector = resolve_projector(lax, ["//title"])
        result = repro.prune(stray, lax, projector)
        assert result.stray
        assert result.text == stray
        assert result.stats.bytes_out == result.stats.bytes_in

    def test_non_strays_still_prune(self, lax):
        projector = resolve_projector(lax, ["//title"])
        result = repro.prune(SAMPLE[0], lax, projector)
        assert not result.stray
        assert "<author>" not in result.text

    def test_file_to_file_copy(self, lax, tmp_path):
        projector = resolve_projector(lax, ["//title"])
        src = tmp_path / "stray.xml"
        src.write_text(STRAY_ELEMENT)
        out = tmp_path / "out.xml"
        result = repro.prune(str(src), lax, projector, out=str(out))
        assert result.stray
        assert out.read_text() == STRAY_ELEMENT

    def test_caller_sink_sees_only_the_final_bytes(self, lax, tmp_path):
        projector = resolve_projector(lax, ["//title"])
        sink = io.StringIO()
        result = repro.prune(STRAY_ELEMENT, lax, projector, out=sink)
        assert result.stray and sink.getvalue() == STRAY_ELEMENT
        sink = io.StringIO()
        result = repro.prune(SAMPLE[0], lax, projector, out=sink)
        assert not result.stray and "<author>" not in sink.getvalue()

    def test_stream_source_copies(self, lax):
        projector = resolve_projector(lax, ["//title"])
        result = repro.prune(io.StringIO(STRAY_ELEMENT), lax, projector)
        assert result.stray and result.text == STRAY_ELEMENT

    def test_event_source_refuses_copy_policy(self, lax):
        projector = resolve_projector(lax, ["//title"])
        with pytest.raises(ReproError, match="replay"):
            repro.prune(parse_events(STRAY_ELEMENT), lax, projector)


# -- batch, ledger, CLI and service wiring ------------------------------------


class TestBatchMode:
    def test_prune_many_error_policy_reports_stray_kind(
        self, sample_grammar, tmp_path
    ):
        docs = []
        for index, doc in enumerate([SAMPLE[0], STRAY_ELEMENT, SAMPLE[1]]):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(doc)
            docs.append(str(path))
        out_dir = tmp_path / "out"
        batch = repro.prune_many(
            docs, sample_grammar, ["//title"], jobs=1, out_dir=str(out_dir)
        )
        assert batch.succeeded == 2
        assert [error.kind for error in batch.errors] == ["StrayDocumentError"]
        assert batch.strays == 0

    def test_prune_many_copy_policy_counts_strays(self, tmp_path):
        lax = infer_grammar(SAMPLE, on_stray="copy")
        docs = []
        for index, doc in enumerate([SAMPLE[0], STRAY_ELEMENT, SAMPLE[1]]):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(doc)
            docs.append(str(path))
        out_dir = tmp_path / "out"
        batch = repro.prune_many(
            docs, lax, ["//title"], jobs=1, out_dir=str(out_dir)
        )
        assert batch.ok and batch.succeeded == 3
        assert batch.strays == 1
        assert (out_dir / "doc1.xml").read_text() == STRAY_ELEMENT


class TestLedger:
    def test_inferred_runs_record_but_never_dedup_serve(
        self, sample_grammar, tmp_path
    ):
        """Dedup-serving keys on (source, grammar, options) — but an
        inferred-grammar result depends on the stray verdict, so serving
        from the store is disabled (validate is forced on)."""
        from repro.ledger import Ledger

        projector = resolve_projector(sample_grammar, ["//title"])
        src = tmp_path / "doc.xml"
        src.write_text(SAMPLE[0])
        with Ledger(str(tmp_path / "ledger.jsonl")) as ledger:
            first = repro.prune(str(src), sample_grammar, projector, ledger=ledger)
            again = repro.prune(str(src), sample_grammar, projector, ledger=ledger)
            # The second run re-recorded the same attestation (no new
            # history) but was *re-pruned*, not served from the store.
            assert ledger.appended == 1 and len(ledger.entries) == 1
            assert ledger.hits == 0
            assert first.text == again.text


class TestCli:
    def _corpus(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for index, doc in enumerate(SAMPLE):
            (corpus / f"doc{index}.xml").write_text(doc)
        return corpus

    def test_infer_from_prunes(self, tmp_path, capsys):
        from repro.cli import main

        corpus = self._corpus(tmp_path)
        doc = tmp_path / "in.xml"
        doc.write_text(SAMPLE[0])
        out = tmp_path / "out.xml"
        code = main([
            "prune", "--infer-from", str(corpus), "--query", "//title",
            str(doc), str(out),
        ])
        assert code == 0
        assert "<author>" not in out.read_text()

    def test_infer_from_stray_error_is_structured(self, tmp_path, capsys):
        from repro.cli import main

        corpus = self._corpus(tmp_path)
        doc = tmp_path / "in.xml"
        doc.write_text(STRAY_ELEMENT)
        out = tmp_path / "out.xml"
        code = main([
            "prune", "--infer-from", str(corpus), "--query", "//title",
            str(doc), str(out),
        ])
        assert code == 1
        assert "StrayDocumentError" in capsys.readouterr().err
        assert not out.exists()

    def test_infer_from_on_stray_copy(self, tmp_path, capsys):
        from repro.cli import main

        corpus = self._corpus(tmp_path)
        doc = tmp_path / "in.xml"
        doc.write_text(STRAY_ELEMENT)
        out = tmp_path / "out.xml"
        code = main([
            "prune", "--infer-from", str(corpus), "--on-stray", "copy",
            "--query", "//title", str(doc), str(out),
        ])
        assert code == 0
        assert out.read_text() == STRAY_ELEMENT


@pytest.mark.skipif(not HAS_FORK, reason="service workers require fork")
class TestService:
    def test_inferred_grammar_pins_and_strays_surface(self, sample_grammar):
        from repro.core.cache import ProjectorCache
        from repro.errors import RemoteError
        from repro.service import ServiceClient, ServiceConfig, serve_background

        projector = resolve_projector(sample_grammar, ["//title"])
        expected = repro.prune(SAMPLE[0], sample_grammar, projector).text
        with serve_background(
            ServiceConfig(port=0, jobs=1), cache=ProjectorCache()
        ) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                outcome = client.prune(
                    source=SAMPLE[0], queries=["//title"], grammar=sample_grammar
                )
                assert outcome.text == expected
                with pytest.raises(RemoteError, match="strays"):
                    client.prune(
                        source=STRAY_ELEMENT, queries=["//title"],
                        grammar=sample_grammar,
                    )
                lax = infer_grammar(SAMPLE, on_stray="copy")
                copied = client.prune(
                    source=STRAY_ELEMENT, queries=["//title"], grammar=lax
                )
                assert copied.text == STRAY_ELEMENT
