"""High-level pipeline API tests (repro.core.pipeline)."""

import pytest

from repro.core.pipeline import AnalysisResult, analyze, type_of_query
from repro.dtd.grammar import text_name
from repro.errors import AnalysisError, ProjectorError


class TestAnalyze:
    def test_single_query_string(self, book_grammar):
        result = analyze(book_grammar, "//title")
        assert isinstance(result, AnalysisResult)
        assert "title" in result.projector

    def test_list_of_queries_unions(self, book_grammar):
        result = analyze(book_grammar, ["//title", "//price"])
        assert {"title", "price"} <= result.projector
        assert len(result.per_query) == 2
        assert result.projector == frozenset().union(*result.per_query)

    def test_projector_is_checked(self, book_grammar):
        result = analyze(book_grammar, ["//author"])
        book_grammar.check_projector(result.projector)  # no raise

    def test_selectivity_metric(self, book_grammar):
        narrow = analyze(book_grammar, ["/bib"], materialize=False)
        wide = analyze(book_grammar, ["//node()"])
        assert 0 < narrow.selectivity < wide.selectivity <= 1.0

    def test_analysis_seconds_populated(self, book_grammar):
        result = analyze(book_grammar, ["//title"])
        assert result.analysis_seconds > 0

    def test_paths_recorded(self, book_grammar):
        result = analyze(book_grammar, ["//title"])
        assert len(result.paths) == 1
        assert "title" in str(result.paths[0])

    def test_empty_query_list(self, book_grammar):
        result = analyze(book_grammar, [])
        assert result.projector == {"bib"}

    def test_non_query_rejected(self, book_grammar):
        with pytest.raises(AnalysisError):
            analyze(book_grammar, ["count(//a)"])


class TestMaterializeFlag:
    def test_materialized_includes_answer_subtrees(self, book_grammar):
        with_subtrees = analyze(book_grammar, "//book").projector
        without = analyze(book_grammar, "//book", materialize=False).projector
        assert text_name("title") in with_subtrees
        assert text_name("title") not in without
        assert without < with_subtrees

    def test_unknown_tag_query_keeps_root_only(self, book_grammar):
        projector = analyze(book_grammar, "//pamphlet").projector
        assert projector == {"bib"}

    def test_absolute_dead_first_step_keeps_root(self, book_grammar):
        projector = analyze(book_grammar, "/wrongroot/title").projector
        assert projector == {"bib"}


class TestMaterializationIncludesAttributes:
    def test_xquery_materialised_elements_keep_attributes(self, book_grammar):
        """Regression: copying an element into constructed output must keep
        its attributes — the trailing descendant-or-self marker implies the
        attribute-inclusive closure."""
        result = analyze(
            book_grammar, "for $b in /bib/book return <copy>{$b}</copy>"
        )
        assert "book@isbn" in result.projector

    def test_xpath_materialised_answers_keep_attributes(self, book_grammar):
        projector = analyze(book_grammar, "//book").projector
        assert "book@isbn" in projector


class TestTypeOfQuery:
    def test_returns_result_names(self, book_grammar):
        assert type_of_query(book_grammar, "//book/title") == {"title"}

    def test_text_result(self, book_grammar):
        assert type_of_query(book_grammar, "//author/text()") == {text_name("author")}

    def test_empty_for_impossible_query(self, book_grammar):
        assert type_of_query(book_grammar, "//book/book") == frozenset()


class TestAnalyzeXQuery:
    def test_single_and_bunch(self, book_grammar):
        single = analyze(book_grammar, "for $b in /bib/book return $b/title")
        bunch = analyze(
            book_grammar,
            [
                "for $b in /bib/book return $b/title",
                "for $b in /bib/book return $b/price",
            ],
        )
        assert "title" in single.projector
        assert {"title", "price"} <= bunch.projector

    def test_rewrite_flag_changes_projector(self, book_grammar):
        query = (
            "for $y in /bib//node() return "
            "if ($y/author) then $y/author else ()"
        )
        with_rewrite = analyze(book_grammar, query, rewrite=True)
        without = analyze(book_grammar, query, rewrite=False)
        # Without the Section 5 rewriting, the descendant-or-self path
        # annuls pruning; with it the projector is strictly smaller.
        assert with_rewrite.projector < without.projector

    def test_extraction_paths_recorded(self, book_grammar):
        result = analyze(book_grammar, "for $b in /bib/book return $b/title")
        assert result.paths
