"""XPath core function library tests, including the F(f, i) table."""

import math

import pytest

from repro.errors import XPathTypeError
from repro.xmltree.builder import parse_document
from repro.xpath.evaluator import evaluate
from repro.xpath.functions import FUNCTIONS, function_needs_subtree

DOC = parse_document(
    "<r><a>alpha</a><a>beta</a><n>3</n><n>4.5</n><w>  spaced   out </w></r>"
)


def ev(expression):
    return evaluate(DOC, expression)


class TestNodeSetFunctions:
    def test_count(self):
        assert ev("count(//a)") == 2.0

    def test_count_requires_nodeset(self):
        with pytest.raises(XPathTypeError):
            ev("count(1)")

    def test_position_and_last_in_predicates(self):
        assert ev("count(//a[position() = last()])") == 1.0

    def test_name_and_local_name(self):
        assert ev("name(//a)") == "a"
        assert ev("local-name(//n)") == "n"
        assert ev("name(//zzz)") == ""


class TestStringFunctions:
    def test_string_of_context(self):
        assert ev("string(//a[1])") == "alpha"

    def test_concat(self):
        assert ev("concat('a', 'b', 'c')") == "abc"

    def test_starts_with_and_contains(self):
        assert ev("starts-with('alpha', 'al')") is True
        assert ev("contains(//a[1], 'lph')") is True
        assert ev("ends-with('alpha', 'ha')") is True

    def test_substring_family(self):
        assert ev("substring('12345', 2, 3)") == "234"
        assert ev("substring('12345', 2)") == "2345"
        assert ev("substring-before('a=b', '=')") == "a"
        assert ev("substring-after('a=b', '=')") == "b"
        assert ev("substring-before('ab', 'x')") == ""

    def test_substring_rounding_per_spec(self):
        assert ev("substring('12345', 1.5, 2.6)") == "234"

    def test_string_length(self):
        assert ev("string-length('abc')") == 3.0

    def test_normalize_space(self):
        assert ev("normalize-space(//w)") == "spaced out"

    def test_translate(self):
        assert ev("translate('bar', 'abc', 'ABC')") == "BAr"
        assert ev("translate('--aaa--', 'a-', 'A')") == "AAA"


class TestBooleanFunctions:
    def test_boolean_coercions(self):
        assert ev("boolean(0)") is False
        assert ev("boolean('x')") is True
        assert ev("boolean(//zzz)") is False

    def test_not(self):
        assert ev("not(//zzz)") is True

    def test_true_false(self):
        assert ev("true()") is True
        assert ev("false()") is False

    def test_empty_and_exists(self):
        assert ev("empty(//zzz)") is True
        assert ev("exists(//a)") is True


class TestNumberFunctions:
    def test_number(self):
        assert ev("number('42')") == 42.0
        assert math.isnan(ev("number('nope')"))

    def test_sum(self):
        assert ev("sum(//n)") == 7.5

    def test_floor_ceiling_round(self):
        assert ev("floor(2.7)") == 2.0
        assert ev("ceiling(2.1)") == 3.0
        assert ev("round(2.5)") == 3.0
        assert ev("round(-2.5)") == -2.0  # XPath rounds .5 towards +inf


class TestArity:
    def test_too_few_arguments(self):
        with pytest.raises(XPathTypeError):
            ev("contains('x')")

    def test_too_many_arguments(self):
        with pytest.raises(XPathTypeError):
            ev("not(1, 2)")

    def test_unknown_function(self):
        with pytest.raises(XPathTypeError):
            ev("frobnicate(1)")


class TestFTable:
    """The paper's F(f, i) (Section 3.3): which functions need subtrees."""

    def test_structural_functions_need_self_only(self):
        for name in ("count", "position", "last", "not", "empty", "exists", "boolean", "name"):
            assert not function_needs_subtree(name), name

    def test_value_functions_need_subtrees(self):
        for name in ("string", "contains", "substring", "sum", "number", "normalize-space"):
            assert function_needs_subtree(name), name

    def test_unknown_functions_conservatively_need_subtrees(self):
        assert function_needs_subtree("user-defined-thing")

    def test_registry_is_consistent(self):
        for name, spec in FUNCTIONS.items():
            assert spec.name == name
            assert spec.max_args == -1 or spec.max_args >= spec.min_args
