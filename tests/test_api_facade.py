"""The unified prune() facade (repro.api): source/out dispatch,
PruneOptions, parity with the old per-source entry points."""

import io
import os
import pathlib

import pytest

from repro import PruneOptions, PruneResult, prune
from repro.api import DEFAULT_OPTIONS
from repro.dtd.grammar import text_name
from repro.errors import ReproError
from repro.xmltree.builder import build_tree
from repro.xmltree.parser import parse_events
from tests.conftest import BOOK_XML


@pytest.fixture()
def projector(book_grammar):
    return book_grammar.projector_closure(["title", text_name("title")])


class TestSourceDispatch:
    def test_markup_string_returns_text(self, book_grammar, projector):
        result = prune(BOOK_XML, book_grammar, projector)
        assert isinstance(result, PruneResult)
        assert result.text.startswith("<bib>")
        assert result.events is None and result.output_path is None
        assert result.stats.bytes_in == len(BOOK_XML.encode("utf-8"))

    def test_leading_whitespace_still_markup(self, book_grammar, projector):
        result = prune("\n  " + BOOK_XML, book_grammar, projector)
        assert "<title>" in result.text

    def test_path_string_reads_file(self, book_grammar, projector, tmp_path):
        source = tmp_path / "in.xml"
        source.write_text(BOOK_XML)
        result = prune(str(source), book_grammar, projector)
        assert "<title>" in result.text
        assert result.stats.bytes_in == os.path.getsize(source)

    def test_pathlike_source_and_out(self, book_grammar, projector, tmp_path):
        source = tmp_path / "in.xml"
        source.write_text(BOOK_XML)
        out = tmp_path / "out.xml"
        result = prune(source, book_grammar, projector, out=out)
        assert result.output_path == str(out)
        assert result.text is None
        assert "<title>" in pathlib.Path(result.output_path).read_text()

    def test_stream_source(self, book_grammar, projector):
        result = prune(io.StringIO(BOOK_XML), book_grammar, projector)
        assert "<title>" in result.text

    def test_stream_out(self, book_grammar, projector):
        sink = io.StringIO()
        result = prune(BOOK_XML, book_grammar, projector, out=sink)
        assert result.text is None and result.output_path is None
        assert "<title>" in sink.getvalue()
        assert result.stats.bytes_out == len(sink.getvalue())

    def test_event_source_returns_events(self, book_grammar, projector):
        result = prune(parse_events(BOOK_XML), book_grammar, projector)
        document = build_tree(iter(result))  # PruneResult is iterable
        assert {node.tag for node in document.elements()} == {"bib", "book", "title"}
        # Stats finish filling once the iterator is exhausted.
        assert result.stats.elements_out == 7  # bib + 3 book + 3 title

    def test_event_source_rejects_out(self, book_grammar, projector):
        with pytest.raises(ReproError):
            prune(parse_events(BOOK_XML), book_grammar, projector, out=io.StringIO())

    def test_unprunable_source_type(self, book_grammar, projector):
        with pytest.raises(TypeError):
            prune(42, book_grammar, projector)

    def test_text_result_is_not_iterable_as_events(self, book_grammar, projector):
        result = prune(BOOK_XML, book_grammar, projector)
        with pytest.raises(TypeError):
            iter(result)


class TestAllFormsAgree:
    def test_same_output_every_way(self, book_grammar, projector, tmp_path):
        source = tmp_path / "in.xml"
        source.write_text(BOOK_XML)
        out_file = tmp_path / "out.xml"

        from_markup = prune(BOOK_XML, book_grammar, projector).text
        from_stream = prune(io.StringIO(BOOK_XML), book_grammar, projector).text
        prune(str(source), book_grammar, projector, out=str(out_file))
        from_file = out_file.read_text()
        sink = io.StringIO()
        prune(str(source), book_grammar, projector, out=sink)
        from_mixed = sink.getvalue()

        assert from_markup == from_stream == from_file == from_mixed

    @pytest.mark.parametrize("fast", [True, False])
    def test_fast_flag_is_byte_identical(self, book_grammar, projector, fast):
        result = prune(BOOK_XML, book_grammar, projector, fast=fast)
        baseline = prune(BOOK_XML, book_grammar, projector)
        assert result.text == baseline.text


class TestOptions:
    def test_defaults(self):
        assert DEFAULT_OPTIONS == PruneOptions()
        assert DEFAULT_OPTIONS.fast and not DEFAULT_OPTIONS.validate

    def test_options_object(self, book_grammar, projector):
        opts = PruneOptions(fast=False, chunk_size=7)
        result = prune(BOOK_XML, book_grammar, projector, options=opts)
        assert "<title>" in result.text

    def test_keyword_overrides_options(self, book_grammar):
        # validate=True in options, overridden off by the keyword: the
        # invalid document must then prune without raising (projector keeps
        # only the root, and the default pipeline doesn't check order).
        opts = PruneOptions(validate=True)
        bad = "<bib><book><author>a</author><title>t</title></book></bib>"
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            prune(bad, book_grammar, frozenset({"bib"}), options=opts)
        result = prune(bad, book_grammar, frozenset({"bib"}),
                       options=opts, validate=False)
        assert result.text == "<bib/>"

    def test_options_are_frozen(self):
        with pytest.raises(Exception):
            PruneOptions().fast = False
