"""Definition 4.3 property tests, including the paper's own examples."""

from repro.dtd.grammar import grammar_from_productions, grammar_from_text
from repro.dtd.properties import (
    analyze_grammar,
    is_parent_unambiguous,
    is_recursive,
    is_star_guarded,
    is_star_guarded_regex,
    recursive_names,
)
from repro.dtd.regex import Alt, Atom, Epsilon, Opt, Plus, Seq, Star


def A(name):
    return Atom(name)


class TestStarGuarded:
    def test_products_without_unions_are_guarded(self):
        assert is_star_guarded_regex(Seq([A("a"), Plus(A("b")), Opt(A("c"))]))

    def test_starred_union_is_guarded(self):
        assert is_star_guarded_regex(Seq([A("a"), Star(Alt([A("b"), A("c")]))]))

    def test_plus_guard_counts(self):
        assert is_star_guarded_regex(Plus(Alt([A("a"), A("b")])))

    def test_bare_union_is_not_guarded(self):
        assert not is_star_guarded_regex(Alt([A("a"), A("b")]))

    def test_optional_union_is_not_guarded(self):
        assert not is_star_guarded_regex(Seq([A("a"), Opt(Alt([A("b"), A("c")]))]))

    def test_union_nested_in_unstarred_factor(self):
        assert not is_star_guarded_regex(Seq([Seq([Alt([A("a"), A("b")]), A("c")]), A("d")]))

    def test_grammar_level(self, book_grammar):
        assert is_star_guarded(book_grammar)


class TestRecursive:
    def test_book_dtd_is_not_recursive(self, book_grammar):
        assert not is_recursive(book_grammar)
        assert recursive_names(book_grammar) == frozenset()

    def test_direct_recursion(self):
        grammar = grammar_from_productions("X", {"X": ("a", Star(A("X")))})
        assert is_recursive(grammar)
        assert recursive_names(grammar) == {"X"}

    def test_mutual_recursion(self):
        grammar = grammar_from_text(
            "<!ELEMENT a (b*)><!ELEMENT b (a?)>", "a"
        )
        assert is_recursive(grammar)
        assert recursive_names(grammar) == {"a", "b"}

    def test_xmark_is_recursive(self):
        from repro.workloads.xmark import xmark_grammar

        grammar = xmark_grammar()
        assert is_recursive(grammar)
        # The parlist/listitem loop and the inline markup loop.
        loops = recursive_names(grammar)
        assert "parlist" in loops and "listitem" in loops
        assert "bold" in loops and "keyword" in loops and "emph" in loops


class TestParentUnambiguous:
    def test_book_dtd(self, book_grammar):
        assert is_parent_unambiguous(book_grammar)

    def test_paper_parent_ambiguous_example(self):
        # {X -> a[Y,Z], Y -> b[Z], Z -> c[]} (Section 4.1): Z is a child of
        # X directly and through Y.
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("a", Seq([A("Y"), A("Z")])),
                "Y": ("b", A("Z")),
                "Z": ("c", Epsilon()),
            },
        )
        assert not is_parent_unambiguous(grammar)

    def test_section41_first_example_is_ambiguous_through_its_cycle(self):
        # {X -> c[Y,Z], Y -> a[W,String], Z -> b[String], W -> d[Y?]}:
        # the Y ⇄ W cycle yields chains cYW and cY(WY)W, so by Def 4.3(3)
        # the grammar is parent-ambiguous (any ⇒-cycle implies ambiguity
        # for its members).
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("c", Seq([A("Y"), A("Z")])),
                "Y": ("a", Seq([A("W"), A("Ys")])),
                "Z": ("b", A("Zs")),
                "W": ("d", Opt(A("Y"))),
                "Ys": None,
                "Zs": None,
            },
        )
        assert not is_parent_unambiguous(grammar)

    def test_diamond_without_direct_edge_is_unambiguous(self):
        # X -> (Y, Z); Y -> W; Z -> W: W has two parents but every rooted
        # chain reaching it has the same length — no cYc'Z pattern.
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("x", Seq([A("Y"), A("Z")])),
                "Y": ("y", A("W")),
                "Z": ("z", A("W")),
                "W": ("w", Epsilon()),
            },
        )
        assert is_parent_unambiguous(grammar)

    def test_self_loop_makes_own_child_ambiguous(self):
        # X -> a[X*]: chain X X and X X X both exist.
        grammar = grammar_from_productions("X", {"X": ("a", Star(A("X")))})
        assert not is_parent_unambiguous(grammar)

    def test_unreachable_ambiguity_is_ignored(self):
        # The ambiguous pair sits behind an unreachable name.
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("r", Epsilon()),
                "U": ("u", Seq([A("Y"), A("Z")])),
                "Y": ("b", A("Z")),
                "Z": ("c", Epsilon()),
            },
        )
        assert is_parent_unambiguous(grammar)


class TestBundle:
    def test_completeness_class(self, book_grammar):
        properties = analyze_grammar(book_grammar)
        assert properties.star_guarded
        assert not properties.recursive
        assert properties.parent_unambiguous
        assert properties.completeness_class

    def test_paper_counterexample_dtd_fails_class(self):
        # {X -> c[Y|Z], Y -> a[Y*, String], Z -> b[String]} (Section 4.1):
        # recursive and not *-guarded.
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("c", Alt([A("Y"), A("Z")])),
                "Y": ("a", Seq([Star(A("Y")), A("Ys")])),
                "Z": ("b", A("Zs")),
                "Ys": None,
                "Zs": None,
            },
        )
        properties = analyze_grammar(grammar)
        assert not properties.star_guarded
        assert properties.recursive
        assert not properties.completeness_class
