"""Type-driven projection tests (Def 2.7, Lemma 2.8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.grammar import attribute_name, text_name
from repro.dtd.validator import validate
from repro.errors import ProjectorError
from repro.projection.stats import compare_documents, measure_document
from repro.projection.tree import prune_document
from repro.workloads.randomgen import random_grammar, random_valid_document
from repro.xmltree.nodes import Document, Element, Text, is_projection_of


class TestPruning:
    def test_keeps_only_projected_names(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.check_projector({"bib", "book", "title", text_name("title")})
        pruned = prune_document(book_document, book_interpretation, projector)
        tags = {node.tag for node in pruned.elements()}
        assert tags == {"bib", "book", "title"}
        for node in pruned.iter():
            assert book_interpretation[node.node_id] in projector

    def test_node_ids_are_preserved(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.projector_closure(["author"])
        pruned = prune_document(book_document, book_interpretation, projector)
        for node in pruned.iter():
            original = book_document.node(node.node_id)
            assert getattr(original, "tag", None) == getattr(node, "tag", None)

    def test_original_document_is_untouched(self, book_grammar, book_document, book_interpretation):
        before = book_document.size()
        prune_document(book_document, book_interpretation, frozenset({"bib"}))
        assert book_document.size() == before

    def test_lemma_2_8_result_is_projection(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.projector_closure(["title", text_name("title")])
        pruned = prune_document(book_document, book_interpretation, projector)
        assert is_projection_of(pruned.root, book_document.root)

    def test_non_projector_rejected(self, book_grammar, book_document, book_interpretation):
        with pytest.raises(ProjectorError):
            prune_document(book_document, book_interpretation, {"title"})

    def test_projector_without_root_rejected(self, book_grammar, book_document, book_interpretation):
        with pytest.raises(ProjectorError):
            prune_document(book_document, book_interpretation, frozenset())

    def test_text_nodes_pruned_without_text_name(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.projector_closure(["title"])  # no title#text
        pruned = prune_document(book_document, book_interpretation, projector)
        titles = [node for node in pruned.elements() if node.tag == "title"]
        assert titles and all(not title.children for title in titles)


class TestAttributePolicy:
    def test_declared_attribute_pruned_when_not_projected(
        self, book_grammar, book_document, book_interpretation
    ):
        projector = book_grammar.projector_closure(["book"])
        pruned = prune_document(book_document, book_interpretation, projector)
        books = [node for node in pruned.elements() if node.tag == "book"]
        assert all("isbn" not in book.attributes for book in books)

    def test_projected_attribute_kept(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.projector_closure([attribute_name("book", "isbn")])
        pruned = prune_document(book_document, book_interpretation, projector)
        books = [node for node in pruned.elements() if node.tag == "book"]
        assert all("isbn" in book.attributes for book in books)

    def test_policy_all_keeps_everything(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.projector_closure(["book"])
        pruned = prune_document(
            book_document, book_interpretation, projector, attribute_policy="all"
        )
        books = [node for node in pruned.elements() if node.tag == "book"]
        assert all("isbn" in book.attributes for book in books)

    def test_undeclared_attributes_always_survive(self, book_grammar):
        from repro.xmltree.builder import parse_document

        document = parse_document('<bib><book custom="x"><title>t</title><author>a</author></book></bib>')
        interpretation = validate(document, book_grammar)
        pruned = prune_document(
            document, interpretation, book_grammar.projector_closure(["book"])
        )
        book = next(node for node in pruned.elements() if node.tag == "book")
        assert book.attributes == {"custom": "x"}


class TestStats:
    def test_compare_documents_counts(self, book_grammar, book_document, book_interpretation):
        projector = book_grammar.projector_closure(["title", text_name("title")])
        pruned = prune_document(book_document, book_interpretation, projector)
        stats = compare_documents(book_document, pruned)
        assert stats.nodes_in == book_document.size()
        assert stats.nodes_out == pruned.size()
        assert 0 < stats.size_ratio < 1
        assert stats.complexity_reduction > 0

    def test_measure_document(self, book_document):
        elements, texts, attributes, tags = measure_document(book_document)
        assert elements == sum(1 for node in book_document.elements())
        assert texts == sum(1 for node in book_document.iter() if isinstance(node, Text))
        assert attributes == 3  # one isbn per book
        assert "bib" in tags


# -- properties ------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
def test_pruning_is_projection_and_monotone(grammar_seed, document_seed, selection_seed):
    """Lemma 2.8 plus monotonicity: π1 ⊆ π2 implies prune(t,π1) ≼ prune(t,π2) ≼ t."""
    import random

    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)

    rng = random.Random(selection_seed)
    names = sorted(grammar.reachable_names())
    small = grammar.projector_closure(
        [name for name in names if rng.random() < 0.3] or [grammar.root]
    )
    big = grammar.projector_closure(sorted(small | {name for name in names if rng.random() < 0.3}))

    pruned_small = prune_document(document, interpretation, small | {grammar.root})
    pruned_big = prune_document(document, interpretation, big | {grammar.root})
    assert is_projection_of(pruned_small.root, document.root)
    assert is_projection_of(pruned_big.root, document.root)
    assert is_projection_of(pruned_small.root, pruned_big.root)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_full_projector_is_identity(grammar_seed, document_seed):
    from repro.xmltree.serializer import serialize

    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)
    pruned = prune_document(document, interpretation, grammar.reachable_names())
    assert serialize(pruned) == serialize(document)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_pruning_is_idempotent(grammar_seed, document_seed):
    import random

    from repro.xmltree.serializer import serialize

    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)
    rng = random.Random(grammar_seed ^ document_seed)
    projector = grammar.projector_closure(
        [name for name in sorted(grammar.reachable_names()) if rng.random() < 0.5]
        or [grammar.root]
    ) | {grammar.root}
    once = prune_document(document, interpretation, projector)
    twice = prune_document(once, interpretation, projector)
    assert serialize(once) == serialize(twice)
