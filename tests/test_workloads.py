"""Workload substrate tests: XMark generator, query sets, random generators."""

import pytest

from repro.dtd.properties import analyze_grammar
from repro.dtd.validator import validate
from repro.workloads.xmark import (
    TABLE1_XMARK,
    XMARK_QUERIES,
    XMarkCounts,
    generate_document,
    xmark_grammar,
)
from repro.workloads.xpathmark import TABLE1_XPATHMARK, XPATHMARK_QUERIES
from repro.xmltree.serializer import serialize


class TestXMarkGrammar:
    def test_lowering_succeeds(self):
        grammar = xmark_grammar()
        assert grammar.root == "site"
        assert "open_auction" in grammar.names()
        assert "item@id" in grammar.names()

    def test_is_recursive_like_the_real_dtd(self):
        assert analyze_grammar(xmark_grammar()).recursive


class TestGenerator:
    def test_documents_validate(self):
        grammar = xmark_grammar()
        document = generate_document(0.001, seed=3)
        interpretation = validate(document, grammar)
        assert set(interpretation.names) == document.ids()

    def test_deterministic_in_seed(self):
        first = serialize(generate_document(0.001, seed=11))
        second = serialize(generate_document(0.001, seed=11))
        assert first == second

    def test_different_seeds_differ(self):
        assert serialize(generate_document(0.001, seed=1)) != serialize(
            generate_document(0.001, seed=2)
        )

    def test_counts_scale_linearly(self):
        small = XMarkCounts.for_factor(0.01)
        large = XMarkCounts.for_factor(0.1)
        assert large.items == pytest.approx(10 * small.items, rel=0.05)
        assert large.persons == pytest.approx(10 * small.persons, rel=0.05)

    def test_xmark_proportions(self):
        counts = XMarkCounts.for_factor(1.0)
        assert counts.items == 21750
        assert counts.persons == 25500
        assert counts.open_auctions == 12000
        assert counts.closed_auctions == 9750

    def test_size_scales_roughly_linearly(self):
        small = len(serialize(generate_document(0.001)))
        large = len(serialize(generate_document(0.004)))
        assert 2.5 < large / small < 6.0

    def test_descriptions_dominate_bytes(self):
        """The structural property the paper's Table 1 shape depends on:
        mixed-content descriptions carry most of the document weight."""
        document = generate_document(0.004)
        total = len(serialize(document))
        descriptions = sum(
            len(serialize(node))
            for node in document.elements()
            if node.tag == "description"
        )
        assert descriptions / total > 0.45

    def test_references_are_well_formed(self):
        document = generate_document(0.002)
        person_ids = {
            node.attributes["id"]
            for node in document.elements()
            if node.tag == "person"
        }
        for node in document.elements():
            if node.tag == "personref":
                assert node.attributes["person"] in person_ids


class TestStreamingGeneration:
    """``generate_file`` streams entity subtrees straight to disk; it must
    stay byte-for-byte what ``generate_document`` + serialization with a
    declaration produces (same seed, same RNG call order)."""

    @pytest.mark.parametrize("factor,seed", [(0.001, 3), (0.003, 99)])
    def test_byte_identical_to_tree_path(self, tmp_path, factor, seed):
        from repro.workloads.xmark import generate_file

        path = tmp_path / "xmark.xml"
        written = generate_file(str(path), factor, seed=seed)
        expected = serialize(generate_document(factor, seed=seed), declaration=True)
        content = path.read_text(encoding="utf-8")
        assert content == expected
        assert written == len(content)

    def test_markup_collapses_empty_sections(self, tmp_path):
        from repro.workloads.xmark import generate_file

        # A factor this small has zero closed auctions; the streaming
        # path must collapse the section exactly like the serializer.
        path = tmp_path / "tiny.xml"
        generate_file(str(path), 0.0001, seed=1)
        expected = serialize(generate_document(0.0001, seed=1), declaration=True)
        assert path.read_text(encoding="utf-8") == expected

    def test_memory_bounded_by_entity_not_document(self, tmp_path):
        import tracemalloc

        from repro.workloads.xmark import generate_file

        factor = 0.01
        path = tmp_path / "stream.xml"
        tracemalloc.start()
        generate_file(str(path), factor, seed=7)
        _, streaming_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        serialize(generate_document(factor, seed=7), declaration=True)
        _, tree_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # The tree path holds document + markup; streaming holds one
        # entity subtree plus the 64 KiB write buffer.  At this factor
        # the tree peak is megabytes, streaming stays sub-megabyte.
        assert streaming_peak < tree_peak / 4


class TestQuerySets:
    def test_table1_selection_subset(self):
        assert set(TABLE1_XMARK) <= set(XMARK_QUERIES)
        assert set(TABLE1_XPATHMARK) <= set(XPATHMARK_QUERIES)

    def test_xpathmark_exercises_all_axis_families(self):
        text = " ".join(XPATHMARK_QUERIES.values())
        for needle in (
            "ancestor::", "parent::", "following-sibling::", "preceding-sibling::",
            "following::", "preceding::", "descendant::", "@",
        ):
            assert needle in text, needle

    def test_xpathmark_queries_parse(self):
        from repro.xpath.parser import parse_xpath

        for name, query in XPATHMARK_QUERIES.items():
            parse_xpath(query)

    def test_xmark_queries_evaluate_on_small_doc(self, xmark):
        from repro.xquery.evaluator import XQueryEvaluator

        _, document, _ = xmark
        evaluator = XQueryEvaluator(document)
        for name in TABLE1_XMARK:
            evaluator.evaluate(XMARK_QUERIES[name])  # must not raise


class TestRandomGenerators:
    def test_star_guarded_flag(self):
        from repro.dtd.properties import is_star_guarded
        from repro.workloads.randomgen import random_grammar

        for seed in range(20):
            assert is_star_guarded(random_grammar(seed, star_guarded_only=True))

    def test_nonrecursive_by_default(self):
        from repro.dtd.properties import is_recursive
        from repro.workloads.randomgen import random_grammar

        for seed in range(20):
            assert not is_recursive(random_grammar(seed))

    def test_documents_bounded_depth(self):
        from repro.workloads.randomgen import random_grammar, random_valid_document

        grammar = random_grammar(5, allow_recursion=True)
        document = random_valid_document(grammar, 7, max_depth=6)
        for node in document.iter():
            assert sum(1 for _ in node.ancestors()) <= 6 + 2
