"""The XSD front-end on trial: four design patterns, one grammar.

The compiler's contract is *byte parity with the DTD loader*: a schema
expressible in both formalisms must compile to a fingerprint-identical
grammar, so every cache key, resident pin and ledger attestation behaves
the same no matter which syntax named the grammar.  The four declaration
styles (Russian Doll, Salami Slice, Venetian Blind, Garden of Eden) are
spellings of one language — they must all land on one fingerprint.

Local elements (the paper's footnote 1) compile to the single-type
class; everything outside the supported subset raises the structured
:class:`~repro.errors.UnsupportedSchemaError` naming the construct.
"""

from __future__ import annotations

import multiprocessing

import pytest

import repro
from repro.core.cache import grammar_fingerprint, resolve_projector
from repro.dtd.grammar import Grammar, grammar_from_text
from repro.dtd.regex import Atom, Epsilon, Opt, Plus, Seq, Star
from repro.dtd.singletype import SingleTypeGrammar
from repro.dtd.validator import validate
from repro.errors import GrammarError, ReproError, UnsupportedSchemaError
from repro.loading import _detect, load_grammar
from repro.projection.tree import prune_document
from repro.schema.wire import grammar_from_wire, grammar_to_wire
from repro.schema.xsd import grammar_from_xsd, grammar_from_xsd_file, looks_like_xsd
from repro.xmltree.builder import parse_document
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator
from tests.conftest import BOOK_DTD, BOOK_XML

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

# The conftest bibliography, as an XML Schema (Garden of Eden style:
# both elements and types global).
BOOK_XSD = """<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="bib" type="BibType"/>
  <xs:element name="book" type="BookType"/>
  <xs:element name="title" type="xs:string"/>
  <xs:element name="author" type="xs:string"/>
  <xs:element name="year" type="xs:string"/>
  <xs:element name="price" type="xs:decimal"/>
  <xs:complexType name="BibType">
    <xs:sequence>
      <xs:element ref="book" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="BookType">
    <xs:sequence>
      <xs:element ref="title"/>
      <xs:element ref="author" maxOccurs="unbounded"/>
      <xs:element ref="year" minOccurs="0"/>
      <xs:element ref="price" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="isbn" type="xs:string"/>
  </xs:complexType>
</xs:schema>
"""


def _one_library_schema(style: str) -> str:
    """One logical schema — ``library (book+)``, ``book (title, author*)``
    with a required ``id`` — in each of the four declaration styles."""
    if style == "russian-doll":
        return """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="library">
            <xs:complexType>
              <xs:sequence>
                <xs:element name="book" maxOccurs="unbounded">
                  <xs:complexType>
                    <xs:sequence>
                      <xs:element name="title" type="xs:string"/>
                      <xs:element name="author" type="xs:string"
                                  minOccurs="0" maxOccurs="unbounded"/>
                    </xs:sequence>
                    <xs:attribute name="id" use="required"/>
                  </xs:complexType>
                </xs:element>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
        </xs:schema>"""
    if style == "salami-slice":
        return """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="library">
            <xs:complexType>
              <xs:sequence>
                <xs:element ref="book" maxOccurs="unbounded"/>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
          <xs:element name="book">
            <xs:complexType>
              <xs:sequence>
                <xs:element ref="title"/>
                <xs:element ref="author" minOccurs="0" maxOccurs="unbounded"/>
              </xs:sequence>
              <xs:attribute name="id" use="required"/>
            </xs:complexType>
          </xs:element>
          <xs:element name="title" type="xs:string"/>
          <xs:element name="author" type="xs:string"/>
        </xs:schema>"""
    if style == "venetian-blind":
        return """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="library" type="LibraryType"/>
          <xs:complexType name="LibraryType">
            <xs:sequence>
              <xs:element name="book" type="BookType" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
          <xs:complexType name="BookType">
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="author" type="xs:string"
                          minOccurs="0" maxOccurs="unbounded"/>
            </xs:sequence>
            <xs:attribute name="id" use="required"/>
          </xs:complexType>
        </xs:schema>"""
    assert style == "garden-of-eden"
    return """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="library" type="LibraryType"/>
      <xs:element name="book" type="BookType"/>
      <xs:element name="title" type="xs:string"/>
      <xs:element name="author" type="xs:string"/>
      <xs:complexType name="LibraryType">
        <xs:sequence>
          <xs:element ref="book" maxOccurs="unbounded"/>
        </xs:sequence>
      </xs:complexType>
      <xs:complexType name="BookType">
        <xs:sequence>
          <xs:element ref="title"/>
          <xs:element ref="author" minOccurs="0" maxOccurs="unbounded"/>
        </xs:sequence>
        <xs:attribute name="id" use="required"/>
      </xs:complexType>
    </xs:schema>"""


STYLES = ("russian-doll", "salami-slice", "venetian-blind", "garden-of-eden")

LIBRARY_DTD = """
<!ELEMENT library (book+)>
<!ELEMENT book (title, author*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ATTLIST book id CDATA #REQUIRED>
"""

LIBRARY_XML = (
    '<library>'
    '<book id="1"><title>Moby-Dick</title><author>Melville</author></book>'
    '<book id="2"><title>Anthology</title></book>'
    '</library>'
)

# Footnote 1: two *local* declarations of tag <item> with different
# content — inexpressible as a DTD, compiles to the single-type class.
LOCAL_ITEMS_XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="books">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="item" minOccurs="0" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"/>
                    <xs:element name="pages" type="xs:integer"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="films">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="item" minOccurs="0" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string"/>
                    <xs:element name="minutes" type="xs:integer"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"""

LOCAL_ITEMS_XML = (
    "<library>"
    "<books>"
    "<item><title>Moby-Dick</title><pages>635</pages></item>"
    "<item><title>Ulysses</title><pages>730</pages></item>"
    "</books>"
    "<films>"
    "<item><title>Stalker</title><minutes>161</minutes></item>"
    "</films>"
    "</library>"
)


def _wrap(body: str) -> str:
    return (
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
        + body
        + "</xs:schema>"
    )


# -- sniffing and dispatch (satellite: the _detect misrouting fix) ------------


class TestDetection:
    def test_looks_like_xsd(self):
        assert looks_like_xsd(BOOK_XSD)
        assert looks_like_xsd('<schema xmlns="..."/>')
        assert looks_like_xsd('<?xml version="1.0"?>\n<!-- c -->\n<xsd:schema/>')
        assert not looks_like_xsd(BOOK_XML)
        assert not looks_like_xsd("<bib/>")
        assert not looks_like_xsd("")

    def test_detect_routes_inline_xsd_markup_to_xsd(self):
        # Regression: an XSD is itself an XML document, so before the
        # sniff it fell through to the dataguide branch and came back as
        # a grammar *of the schema document* (xs:schema as the root tag).
        assert _detect(BOOK_XSD) == "xsd"
        assert _detect(BOOK_XML) == "xml"

    def test_detect_routes_xsd_paths_to_xsd(self, tmp_path):
        path = tmp_path / "bib.xsd"
        path.write_text(BOOK_XSD)
        assert _detect(str(path)) == "xsd"
        assert _detect(path) == "xsd"
        assert _detect(str(tmp_path / "doc.xml")) == "xml"

    def test_load_grammar_auto_does_not_dataguide_a_schema(self, tmp_path):
        # The misrouted result was a "grammar" whose root tag is the
        # schema element itself — assert the fix end to end.
        path = tmp_path / "bib.xsd"
        path.write_text(BOOK_XSD)
        for source in (BOOK_XSD, str(path)):
            grammar = load_grammar(source)
            assert grammar.root == "bib"
            assert "schema" not in {
                p.tag
                for p in grammar.productions.values()
                if hasattr(p, "tag")
            }

    def test_load_grammar_explicit_format_and_root(self, tmp_path):
        grammar = load_grammar(BOOK_XSD, format="xsd", root="book")
        assert grammar.root == "book"
        stream_path = tmp_path / "bib.xsd"
        stream_path.write_text(BOOK_XSD)
        with open(stream_path, "r", encoding="utf-8") as handle:
            # A stream sniffs as a document; format= overrides.
            assert load_grammar(handle, format="xsd").root == "bib"


# -- DTD byte parity ----------------------------------------------------------


class TestDtdParity:
    def test_book_schema_fingerprint_matches_dtd(self, book_grammar):
        compiled = grammar_from_xsd(BOOK_XSD)
        assert grammar_fingerprint(compiled) == grammar_fingerprint(book_grammar)

    def test_pruned_bytes_identical_across_all_paths(self, book_grammar):
        compiled = grammar_from_xsd(BOOK_XSD)
        projector = resolve_projector(book_grammar, ["//book[author='Dante']/title"])
        baseline = repro.prune(BOOK_XML, book_grammar, projector).text
        assert repro.prune(BOOK_XML, compiled, projector).text == baseline
        assert (
            repro.prune(BOOK_XML, compiled, projector, fast=False).text == baseline
        )
        document = parse_document(BOOK_XML)
        interpretation = validate(document, compiled)
        tree = prune_document(document, interpretation, projector)
        assert serialize(tree) == baseline

    def test_four_patterns_one_fingerprint(self):
        fingerprints = {
            style: grammar_fingerprint(grammar_from_xsd(_one_library_schema(style)))
            for style in STYLES
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_four_patterns_match_the_dtd(self):
        dtd = grammar_from_text(LIBRARY_DTD, "library")
        for style in STYLES:
            compiled = grammar_from_xsd(_one_library_schema(style))
            assert grammar_fingerprint(compiled) == grammar_fingerprint(dtd), style

    @pytest.mark.parametrize("style", STYLES)
    def test_each_pattern_end_to_end(self, style):
        grammar = grammar_from_xsd(_one_library_schema(style))
        assert isinstance(grammar, Grammar)
        assert not isinstance(grammar, SingleTypeGrammar)
        result = repro.analyze(grammar, ["//book/title"])
        pruned = repro.prune(LIBRARY_XML, grammar, result.projector)
        assert pruned.text is not None and "<author>" not in pruned.text
        document = parse_document(LIBRARY_XML)
        before = XPathEvaluator(document).select_ids("//book/title")
        interpretation = validate(document, grammar)
        tree = prune_document(document, interpretation, result.projector)
        assert XPathEvaluator(tree).select_ids("//book/title") == before


# -- local elements (footnote 1) ---------------------------------------------


class TestLocalElements:
    def test_compiles_to_single_type(self):
        grammar = grammar_from_xsd(LOCAL_ITEMS_XSD)
        assert isinstance(grammar, SingleTypeGrammar)
        # Two names for tag <item>, disambiguated deterministically.
        item_names = sorted(
            name
            for name, production in grammar.productions.items()
            if getattr(production, "tag", None) == "item"
        )
        assert item_names == ["films.item", "item"]

    def test_projection_distinguishes_the_locals(self):
        grammar = grammar_from_xsd(LOCAL_ITEMS_XSD)
        result = repro.analyze(grammar, ["//books/item/pages"])
        # The films' <item> name must not survive analysis.
        kept_tags = {
            grammar.productions[name].tag
            for name in result.projector
            if hasattr(grammar.productions[name], "tag")
        }
        assert "minutes" not in kept_tags
        pruned = repro.prune(LOCAL_ITEMS_XML, grammar, result.projector)
        assert pruned.text is not None
        assert "<minutes>" not in pruned.text
        assert pruned.text.count("<pages>") == 2

    def test_query_answers_survive_pruning(self):
        grammar = grammar_from_xsd(LOCAL_ITEMS_XSD)
        query = "//item/title"
        document = parse_document(LOCAL_ITEMS_XML)
        before = XPathEvaluator(document).select_ids(query)
        result = repro.analyze(grammar, [query])
        interpretation = validate(document, grammar)
        tree = prune_document(document, interpretation, result.projector)
        assert XPathEvaluator(tree).select_ids(query) == before


# -- content-model compilation ------------------------------------------------


class TestContentModels:
    def _regex_of(self, body: str, tag: str = "r"):
        grammar = grammar_from_xsd(_wrap(body))
        return grammar.productions[tag].regex

    def test_occurrence_unrolling(self):
        body = """<xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="a" type="xs:string" minOccurs="2" maxOccurs="unbounded"/>
            <xs:element name="b" type="xs:string" minOccurs="1" maxOccurs="3"/>
            <xs:element name="c" type="xs:string" minOccurs="0" maxOccurs="0"/>
        </xs:sequence></xs:complexType></xs:element>"""
        regex = self._regex_of(body)
        assert isinstance(regex, Seq)
        a_part, b_part, c_part = regex.items
        # minOccurs=2, unbounded: a (a)+
        assert isinstance(a_part, Seq)
        assert isinstance(a_part.items[0], Atom)
        assert isinstance(a_part.items[1], Plus)
        # 1..3: b b? b?
        assert isinstance(b_part, Seq)
        assert isinstance(b_part.items[0], Atom)
        assert all(isinstance(item, Opt) for item in b_part.items[1:])
        # maxOccurs=0 vanishes
        assert isinstance(c_part, Epsilon)

    def test_singleton_groups_unwrap_like_dtd_parens(self):
        body = """<xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="a" type="xs:string"/>
        </xs:sequence></xs:complexType></xs:element>"""
        assert isinstance(self._regex_of(body), Atom)

    def test_choice_and_nested_groups(self):
        body = """<xs:element name="r"><xs:complexType>
            <xs:choice maxOccurs="unbounded">
              <xs:element name="a" type="xs:string"/>
              <xs:sequence>
                <xs:element name="b" type="xs:string"/>
                <xs:element name="c" type="xs:string"/>
              </xs:sequence>
            </xs:choice>
        </xs:complexType></xs:element>"""
        regex = self._regex_of(body)
        assert isinstance(regex, Plus)
        for doc in ("<r><a>x</a></r>", "<r><b>x</b><c>y</c><a>z</a></r>"):
            validate(parse_document(doc), grammar_from_xsd(_wrap(
                body.replace('name="r"', 'name="r"')
            )))

    def test_all_is_a_sound_over_approximation(self):
        body = """<xs:element name="r"><xs:complexType><xs:all>
            <xs:element name="a" type="xs:string"/>
            <xs:element name="b" type="xs:string"/>
        </xs:all></xs:complexType></xs:element>"""
        grammar = grammar_from_xsd(_wrap(body))
        regex = grammar.productions["r"].regex
        assert isinstance(regex, Star)
        # Every permutation (and then some) is accepted — soundness only
        # needs acceptance, Theorem 4.5.
        for doc in ("<r><a>x</a><b>y</b></r>", "<r><b>y</b><a>x</a></r>"):
            validate(parse_document(doc), grammar)

    def test_mixed_content_matches_the_dtd_mixed_model(self):
        xsd = _wrap("""<xs:element name="p"><xs:complexType mixed="true">
            <xs:sequence>
              <xs:element name="em" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
            </xs:sequence>
        </xs:complexType></xs:element>""")
        dtd = "<!ELEMENT p (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>"
        assert grammar_fingerprint(grammar_from_xsd(xsd)) == grammar_fingerprint(
            grammar_from_text(dtd, "p")
        )

    def test_empty_complex_type(self):
        body = '<xs:element name="r"><xs:complexType/></xs:element>'
        grammar = grammar_from_xsd(_wrap(body))
        assert isinstance(grammar.productions["r"].regex, Epsilon)
        validate(parse_document("<r/>"), grammar)

    def test_recursion_through_named_types_terminates(self):
        xsd = _wrap("""<xs:element name="part" type="PartType"/>
          <xs:complexType name="PartType">
            <xs:sequence>
              <xs:element name="part" type="PartType"
                          minOccurs="0" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>""")
        grammar = grammar_from_xsd(xsd)
        validate(parse_document("<part><part><part/></part></part>"), grammar)

    def test_simple_content_extension(self):
        body = """<xs:element name="price"><xs:complexType>
            <xs:simpleContent><xs:extension base="xs:decimal">
              <xs:attribute name="currency" use="required"/>
            </xs:extension></xs:simpleContent>
        </xs:complexType></xs:element>"""
        grammar = grammar_from_xsd(_wrap(body))
        validate(parse_document('<price currency="EUR">12</price>'), grammar)
        assert "price@currency" in grammar.productions

    def test_named_simple_type_collapses_to_text(self):
        xsd = _wrap("""<xs:element name="isbn" type="IsbnType"/>
          <xs:simpleType name="IsbnType">
            <xs:restriction base="xs:string"/>
          </xs:simpleType>""")
        grammar = grammar_from_xsd(xsd)
        assert "isbn#text" in grammar.productions


# -- attributes ---------------------------------------------------------------


class TestAttributes:
    def test_use_forms(self):
        body = """<xs:element name="r"><xs:complexType>
            <xs:attribute name="req" use="required"/>
            <xs:attribute name="opt"/>
            <xs:attribute name="gone" use="prohibited"/>
            <xs:attribute name="fix" fixed="v"/>
            <xs:attribute name="dft" default="d"/>
        </xs:complexType></xs:element>"""
        grammar = grammar_from_xsd(_wrap(body))
        names = {attr.name for attr in grammar.productions["r"].attributes}
        assert names == {"req", "opt", "fix", "dft"}
        assert "r@req" in grammar.productions
        assert "r@gone" not in grammar.productions

    def test_global_attribute_ref(self):
        xsd = _wrap("""<xs:element name="r"><xs:complexType>
            <xs:attribute ref="lang" use="required"/>
          </xs:complexType></xs:element>
          <xs:attribute name="lang" type="xs:string"/>""")
        grammar = grammar_from_xsd(xsd)
        assert "r@lang" in grammar.productions


# -- refusals -----------------------------------------------------------------


class TestRefusals:
    @pytest.mark.parametrize(
        "body, construct",
        [
            ('<xs:import namespace="x"/>', "xs:import"),
            ('<xs:include schemaLocation="x"/>', "xs:include"),
            ('<xs:group name="g"/>', "xs:group"),
            ('<xs:notation name="n" public="p"/>', "xs:notation"),
        ],
    )
    def test_top_level_refusals(self, body, construct):
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            grammar_from_xsd(_wrap(body + '<xs:element name="r" type="xs:string"/>'))
        assert excinfo.value.construct == construct
        assert construct in str(excinfo.value)

    def test_any_inside_content_is_refused(self):
        body = """<xs:element name="r"><xs:complexType><xs:sequence>
            <xs:any/>
        </xs:sequence></xs:complexType></xs:element>"""
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            grammar_from_xsd(_wrap(body))
        assert excinfo.value.construct == "xs:any"

    def test_complex_content_is_refused(self):
        body = """<xs:element name="r"><xs:complexType>
            <xs:complexContent><xs:extension base="B"/></xs:complexContent>
        </xs:complexType></xs:element>"""
        with pytest.raises(UnsupportedSchemaError):
            grammar_from_xsd(_wrap(body))

    def test_substitution_group_is_refused(self):
        xsd = _wrap("""<xs:element name="r" type="xs:string"/>
          <xs:element name="s" substitutionGroup="r" type="xs:string"/>""")
        grammar = grammar_from_xsd(xsd)  # root compiles, s is unreferenced
        assert grammar.root == "r"
        with pytest.raises(UnsupportedSchemaError):
            grammar_from_xsd(xsd, root="s")

    def test_implicit_any_type_is_refused(self):
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            grammar_from_xsd(_wrap('<xs:element name="r"/>'))
        assert "anyType" in excinfo.value.construct

    def test_occurs_cap(self):
        body = """<xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="a" type="xs:string" maxOccurs="4096"/>
        </xs:sequence></xs:complexType></xs:element>"""
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            grammar_from_xsd(_wrap(body))
        assert "maxOccurs" in excinfo.value.construct

    def test_bad_bounds_and_bad_refs_are_grammar_errors(self):
        bad_bounds = """<xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="a" type="xs:string" minOccurs="3" maxOccurs="2"/>
        </xs:sequence></xs:complexType></xs:element>"""
        with pytest.raises(GrammarError):
            grammar_from_xsd(_wrap(bad_bounds))
        with pytest.raises(GrammarError):
            grammar_from_xsd(_wrap('<xs:element name="r" type="NoSuchType"/>'))
        with pytest.raises(GrammarError):
            grammar_from_xsd(_wrap(
                """<xs:element name="r"><xs:complexType><xs:sequence>
                     <xs:element ref="nope"/>
                   </xs:sequence></xs:complexType></xs:element>"""
            ))

    def test_unknown_root_tag(self):
        with pytest.raises(GrammarError):
            grammar_from_xsd(BOOK_XSD, root="nope")

    def test_annotations_are_skipped(self):
        xsd = _wrap("""<xs:annotation><xs:documentation>d</xs:documentation>
          </xs:annotation>
          <xs:element name="r" type="xs:string">
            <xs:annotation><xs:documentation>e</xs:documentation></xs:annotation>
          </xs:element>""")
        assert grammar_from_xsd(xsd).root == "r"


# -- the wire codec -----------------------------------------------------------


class TestWire:
    def test_roundtrip_preserves_class_and_fingerprint(self, book_grammar):
        single = grammar_from_xsd(LOCAL_ITEMS_XSD)
        inferred = repro.infer_grammar(BOOK_XML, on_stray="copy")
        for grammar in (book_grammar, single, inferred):
            decoded = grammar_from_wire(grammar_to_wire(grammar))
            assert type(decoded) is type(grammar)
            assert grammar_fingerprint(decoded) == grammar_fingerprint(grammar)
        assert grammar_from_wire(grammar_to_wire(inferred)).on_stray == "copy"

    def test_wire_is_json_compatible(self, book_grammar):
        import json

        wire = grammar_to_wire(book_grammar)
        assert grammar_fingerprint(
            grammar_from_wire(json.loads(json.dumps(wire)))
        ) == grammar_fingerprint(book_grammar)

    @pytest.mark.parametrize(
        "wire",
        [
            42,
            {"root": "r"},
            {"root": "r", "productions": [], "class": "martian"},
            {"root": "r", "productions": [{"kind": "element", "name": "r"}]},
            {
                "root": "r",
                "productions": [
                    {"kind": "element", "name": "r", "tag": "r",
                     "regex": ["warp", 9]}
                ],
            },
        ],
    )
    def test_strict_decode(self, wire):
        with pytest.raises(ReproError):
            grammar_from_wire(wire)


# -- facade, CLI and service wiring -------------------------------------------


class TestWiring:
    def test_grammar_from_xsd_file(self, tmp_path):
        path = tmp_path / "bib.xsd"
        path.write_text(BOOK_XSD)
        grammar = grammar_from_xsd_file(str(path))
        assert grammar.root == "bib"

    def test_cli_schema_flag(self, tmp_path, capsys):
        from repro.cli import main

        xsd = tmp_path / "bib.xsd"
        xsd.write_text(BOOK_XSD)
        doc = tmp_path / "bib.xml"
        doc.write_text(BOOK_XML)
        out = tmp_path / "pruned.xml"
        code = main([
            "prune", "--schema", str(xsd), "--query", "//title",
            str(doc), str(out),
        ])
        assert code == 0
        grammar = grammar_from_xsd(BOOK_XSD)
        projector = resolve_projector(grammar, ["//title"])
        assert out.read_text() == repro.prune(BOOK_XML, grammar, projector).text

    def test_cli_schema_ledger_provenance_replays(self, tmp_path, capsys):
        from repro.cli import main

        xsd = tmp_path / "bib.xsd"
        xsd.write_text(BOOK_XSD)
        doc = tmp_path / "bib.xml"
        doc.write_text(BOOK_XML)
        out = tmp_path / "pruned.xml"
        led = tmp_path / "ledger.jsonl"
        assert main([
            "prune", "--schema", str(xsd), "--query", "//title",
            "--ledger", str(led), str(doc), str(out),
        ]) == 0
        # verify-ledger recovers the grammar from the recorded xsd_path.
        assert main(["verify-ledger", "--ledger", str(led)]) == 0
        assert "1 attested" in capsys.readouterr().out

    @pytest.mark.skipif(not HAS_FORK, reason="service workers require fork")
    def test_service_accepts_xsd_and_wire_grammars(self):
        from repro.core.cache import ProjectorCache
        from repro.service import ServiceClient, ServiceConfig, serve_background

        grammar = grammar_from_xsd(BOOK_XSD)
        projector = resolve_projector(grammar, ["//title"])
        expected = repro.prune(BOOK_XML, grammar, projector).text
        with serve_background(
            ServiceConfig(port=0, jobs=1), cache=ProjectorCache()
        ) as background:
            with ServiceClient("127.0.0.1", background.port) as client:
                via_xsd = client.prune(
                    source=BOOK_XML, queries=["//title"], xsd=BOOK_XSD
                )
                assert via_xsd.text == expected
                via_wire = client.prune(
                    source=BOOK_XML, queries=["//title"], grammar=grammar
                )
                assert via_wire.text == expected
                report = client.check_update(
                    ["/bib/book/year"], queries=["//title"], xsd=BOOK_XSD
                )
                assert report["independent"] is True
