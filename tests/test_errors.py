"""Exception-hierarchy tests: every subsystem error is a ReproError."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.XMLError,
            errors.XMLSyntaxError,
            errors.DTDError,
            errors.DTDSyntaxError,
            errors.GrammarError,
            errors.ValidationError,
            errors.XPathError,
            errors.XPathSyntaxError,
            errors.XPathTypeError,
            errors.XQueryError,
            errors.XQuerySyntaxError,
            errors.XQueryEvaluationError,
            errors.AnalysisError,
            errors.ProjectorError,
            errors.BudgetExceededError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_xml_syntax_error_position(self):
        error = errors.XMLSyntaxError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_validation_error_node_id(self):
        error = errors.ValidationError("bad", node_id=42)
        assert error.node_id == 42

    def test_budget_error_fields(self):
        error = errors.BudgetExceededError("over", used=10, budget=5)
        assert error.used == 10 and error.budget == 5


class TestSingleCatchAtBoundary:
    def test_catch_repro_error_covers_subsystems(self, book_grammar):
        from repro.xmltree.builder import parse_document
        from repro.xpath.parser import parse_xpath
        from repro.xquery.parser import parse_xquery

        boundary_calls = [
            lambda: parse_document("<oops"),
            lambda: parse_xpath("///"),
            lambda: parse_xquery("for $x return"),
            lambda: book_grammar.check_projector({"title"}),
        ]
        for call in boundary_calls:
            with pytest.raises(errors.ReproError):
                call()
