"""Observability layer tests: spans, counters, sinks, the no-op default
(repro.obs)."""

import io
import json

from repro import obs


class TestNullDefault:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert not obs.get_tracer().enabled

    def test_null_span_is_free_and_reusable(self):
        first = obs.span("anything", key="value")
        second = obs.span("other")
        assert first is second  # the shared NullSpan singleton
        with first as span:
            span.count("n", 5)
            span.set(more="attrs")
        assert span.counters == {}
        assert not span.enabled

    def test_module_counters_are_noops(self):
        obs.count("nothing", 10)
        obs.gauge("nothing", 10)
        assert obs.get_tracer().counters == {}

    def test_timed_measures_even_when_disabled(self):
        with obs.timed("work") as span:
            pass
        assert span.seconds > 0
        assert not span.enabled  # measured, but reporting nowhere


class TestSpans:
    def test_span_record_shape(self):
        with obs.capture() as sink:
            with obs.span("stage", doc="a.xml") as span:
                span.count("items", 3)
                span.count("items", 4)
        [record] = sink.spans("stage")
        assert record["type"] == "span"
        assert record["attrs"] == {"doc": "a.xml"}
        assert record["counters"] == {"items": 7}
        assert record["seconds"] > 0

    def test_nesting_tracks_parent_and_depth(self):
        with obs.capture() as sink:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        [inner] = sink.spans("inner")
        [outer] = sink.spans("outer")
        assert inner["parent"] == "outer" and inner["depth"] == 1
        assert outer["parent"] is None and outer["depth"] == 0
        # Inner closes first: sink order is innermost-first.
        assert sink.records.index(inner) < sink.records.index(outer)

    def test_stop_freezes_duration_before_late_counters(self):
        with obs.capture() as sink:
            with obs.span("stage") as span:
                span.stop()
                frozen = span.seconds
                span.count("late", 1)  # attached after the clock stopped
        [record] = sink.spans("stage")
        assert record["seconds"] == frozen > 0
        assert record["counters"] == {"late": 1}

    def test_exception_marks_span(self):
        with obs.capture() as sink:
            try:
                with obs.span("failing"):
                    raise ValueError("boom")
            except ValueError:
                pass
        [record] = sink.spans("failing")
        assert record["attrs"]["error"] == "ValueError"

    def test_merge_counters(self):
        with obs.capture() as sink:
            with obs.span("stage") as span:
                span.count("a", 1)
                span.merge_counters({"a": 2, "b": 5})
        [record] = sink.spans("stage")
        assert record["counters"] == {"a": 3, "b": 5}


class TestCountersAndGauges:
    def test_flush_emits_aggregates_once(self):
        with obs.capture() as sink:
            obs.count("cache.hits")
            obs.count("cache.hits", 2)
            obs.gauge("model_bytes", 1024)
            obs.flush()
            assert sink.counters() == {"cache.hits": 3}
            assert sink.gauges() == {"model_bytes": 1024}
            obs.flush()  # cleared: nothing new
        counter_records = [r for r in sink.records if r["type"] == "counter"]
        assert len(counter_records) == 1


class TestQuantile:
    def test_linear_interpolation(self):
        import pytest

        assert obs.quantile([1.0, 2.0, 3.0, 4.0], 0.95) == pytest.approx(3.85)
        assert obs.quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert obs.quantile([7.0], 0.99) == 7.0

    def test_unsorted_input(self):
        assert obs.quantile([4.0, 1.0, 3.0, 2.0], 0.0) == 1.0
        assert obs.quantile([4.0, 1.0, 3.0, 2.0], 1.0) == 4.0

    def test_rejects_empty_and_out_of_range(self):
        import pytest

        with pytest.raises(ValueError):
            obs.quantile([], 0.5)
        with pytest.raises(ValueError):
            obs.quantile([1.0], -0.1)
        with pytest.raises(ValueError):
            obs.quantile([1.0], 1.1)


class TestHistogram:
    def test_snapshot_shape(self):
        histogram = obs.Histogram("latency")
        assert histogram.snapshot() == {"count": 0}
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == 2.0
        assert snap["p50"] == 2.0
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_record_is_typed(self):
        histogram = obs.Histogram("latency")
        histogram.observe(1.0)
        record = histogram.record()
        assert record["type"] == "histogram"
        assert record["name"] == "latency"
        assert record["count"] == 1

    def test_reservoir_bounds_memory_exactly_and_deterministically(self):
        first = obs.Histogram("x", limit=64)
        second = obs.Histogram("x", limit=64)
        for n in range(10_000):
            first.observe(float(n))
            second.observe(float(n))
        assert len(first._samples) == 64
        assert first._samples == second._samples  # seeded reservoir
        assert first.count == 10_000
        assert first.minimum == 0.0 and first.maximum == 9999.0
        # The reservoir quantile stays near the true distribution.
        assert 3000 < first.quantile(0.5) < 7000

    def test_clear(self):
        histogram = obs.Histogram("x")
        histogram.observe(5.0)
        histogram.clear()
        assert histogram.snapshot() == {"count": 0}

    def test_tracer_observe_flushes_histogram_records(self):
        buffer = io.StringIO()
        sink = obs.JsonlSink(buffer)
        tracer = obs.Tracer(sink)
        for value in (0.1, 0.2, 0.3):
            tracer.observe("service.request_seconds", value)
        tracer.close()
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        records = [r for r in lines if r.get("type") == "histogram"]
        assert len(records) == 1
        assert records[0]["name"] == "service.request_seconds"
        assert records[0]["count"] == 3
        assert records[0]["p50"] == 0.2
        # flush() clears: a second close adds nothing.
        assert tracer.histograms == {}

    def test_module_observe_is_noop_when_disabled(self):
        obs.observe("anything", 1.0)
        assert obs.get_tracer().histograms == {}

    def test_memory_sink_collects_histograms(self):
        sink = obs.MemorySink()
        tracer = obs.Tracer(sink)
        tracer.observe("h", 1.0)
        tracer.close()
        assert sink.histograms()["h"]["count"] == 1


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(str(path))
        tracer = obs.Tracer(sink)
        with tracer.span("stage", names=frozenset({"b", "a"})) as span:
            span.count("n", 1)
        tracer.count("total", 2)
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["name"] == "stage"
        assert lines[0]["attrs"]["names"] == ["a", "b"]  # sets serialise sorted
        assert {"type": "counter", "name": "total", "value": 2} in lines

    def test_jsonl_sink_on_stream(self):
        buffer = io.StringIO()
        sink = obs.JsonlSink(buffer)
        sink.record({"type": "counter", "name": "x", "value": 1})
        sink.close()  # must not close a borrowed stream
        assert json.loads(buffer.getvalue()) == {
            "type": "counter", "name": "x", "value": 1,
        }

    def test_summary_sink_rolls_up(self):
        buffer = io.StringIO()
        sink = obs.SummarySink(buffer)
        tracer = obs.Tracer(sink)
        for _ in range(3):
            with tracer.span("prune") as span:
                span.count("nodes_out", 10)
        tracer.count("cache.hits", 7)
        tracer.close()
        text = buffer.getvalue()
        assert "-- metrics" in text
        assert "prune" in text and "cache.hits" in text
        assert "prune.nodes_out" in text  # span counters roll up under the span

    def test_configure_and_disable_swap_the_global_tracer(self):
        sink = obs.MemorySink()
        obs.configure(sink)
        try:
            assert obs.enabled()
            with obs.span("live"):
                pass
        finally:
            obs.disable()
        assert not obs.enabled()
        assert sink.spans("live")

    def test_capture_restores_previous_tracer(self):
        before = obs.get_tracer()
        with obs.capture():
            assert obs.get_tracer() is not before
        assert obs.get_tracer() is before


class TestPipelineIntegration:
    def test_parse_analyze_prune_spans(self, book_grammar):
        from repro.api import prune
        from repro.core.pipeline import analyze
        from repro.xmltree.builder import parse_document
        from tests.conftest import BOOK_XML

        with obs.capture() as sink:
            parse_document(BOOK_XML)
            result = analyze(book_grammar, ["//title"])
            prune(BOOK_XML, book_grammar, result.projector)
        assert sink.spans("parse")
        assert sink.spans("analysis")
        assert sink.spans("analysis.query")
        [span] = sink.spans("prune")
        assert span["attrs"]["mode"] == "fast"
        assert span["counters"]["bytes_in"] > span["counters"]["bytes_out"] > 0

    def test_prune_span_counters_match_stats(self, book_grammar):
        from repro.api import prune
        from tests.conftest import BOOK_XML

        projector = book_grammar.projector_closure(["title"])
        with obs.capture() as sink:
            result = prune(BOOK_XML, book_grammar, projector)
        [span] = sink.spans("prune")
        assert span["counters"] == result.stats.as_counters()

    def test_analysis_span_backs_analysis_seconds(self, book_grammar):
        from repro.core.pipeline import analyze

        result = analyze(book_grammar, ["//title"])
        assert result.span is not None
        assert result.analysis_seconds == result.span.seconds > 0

    def test_cache_counters(self, book_grammar):
        from repro.core.cache import ProjectorCache

        cache = ProjectorCache()
        with obs.capture() as sink:
            cache.projector_for_query(book_grammar, "//title")
            cache.projector_for_query(book_grammar, "//title")
            obs.flush()
        counters = sink.counters()
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_load_and_query_spans(self, book_grammar):
        import io as _io

        from repro.engine.executor import QueryEngine
        from repro.engine.loader import load_pruned

        projector = book_grammar.projector_closure(["title"])
        with obs.capture() as sink:
            report = load_pruned(_io.StringIO(
                "<bib><book><title>t</title><author>a</author></book></bib>"
            ), book_grammar, projector)
            QueryEngine(report.document).run("//title")
        [load_span] = sink.spans("load")
        assert load_span["attrs"]["strategy"] == "pruned"
        assert load_span["counters"]["nodes_built"] == report.nodes_built
        assert load_span["counters"]["model_bytes"] == report.model_bytes
        [query_span] = sink.spans("query")
        assert query_span["attrs"]["language"] == "xpath"
        assert query_span["counters"]["results"] == 1


class TestAtexitFlush:
    """Trailing trace lines must survive processes that never call
    flush()/close() explicitly — short-lived CLI runs and drained servers
    whose sink is the last thing standing."""

    def _run(self, code: str) -> None:
        import os
        import pathlib
        import subprocess
        import sys

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_subprocess_exit_without_flush_keeps_the_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._run(
            f"""
from repro import obs
obs.configure(obs.JsonlSink({str(path)!r}))
with obs.span("work", kind="atexit-test"):
    obs.count("events", 3)
obs.flush()  # counters emit on flush; the *stream* stays unflushed
# no sink.flush(), no close(): process exit must not lose the buffer
"""
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(record.get("name") == "work" for record in lines)
        assert {"type": "counter", "name": "events", "value": 3} in lines

    def test_forked_child_does_not_double_flush(self, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            import pytest

            pytest.skip("fork start method unavailable")
        path = tmp_path / "trace.jsonl"
        # The child inherits the parent's buffered line; only the parent's
        # atexit hook may write it (the pid guard in JsonlSink).
        self._run(
            f"""
import os
from repro import obs
obs.configure(obs.JsonlSink({str(path)!r}))
with obs.span("parent-only"):
    pass
pid = os.fork()
if pid == 0:
    raise SystemExit(0)  # a *normal* exit: the child's atexit hooks run
os.waitpid(pid, 0)
"""
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in lines if r.get("type") == "span"] == ["parent-only"]

    def test_explicit_close_unregisters_the_hook(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(str(path))
        sink.record({"type": "counter", "name": "x", "value": 1})
        sink.close()
        sink.close()  # idempotent
        assert len(path.read_text().splitlines()) == 1
