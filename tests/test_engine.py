"""Metered engine tests: memory model, budgets, reports."""

import pytest

from repro.engine.executor import QueryEngine, largest_processable_megabytes
from repro.engine.metrics import DEFAULT_MODEL, MemoryModel
from repro.errors import BudgetExceededError
from repro.xmltree.builder import parse_document
from repro.xmltree.serializer import serialize


@pytest.fixture()
def doc():
    return parse_document(
        "<r><a x='1'>text one</a><b><c/><c/></b><a>text two</a></r>"
    )


class TestMemoryModel:
    def test_monotone_in_nodes(self, doc):
        smaller = parse_document("<r><a>text one</a></r>")
        assert DEFAULT_MODEL.document_bytes(smaller) < DEFAULT_MODEL.document_bytes(doc)

    def test_counts_components(self, doc):
        model = MemoryModel(
            element_header=100, child_pointer=0, text_header=0, text_byte=0,
            attribute_entry=0, attribute_byte=0, distinct_tag_entry=0,
        )
        elements = sum(1 for _ in doc.elements())
        assert model.document_bytes(doc) == 100 * elements

    def test_distinct_tags_cost(self, doc):
        base = MemoryModel(distinct_tag_entry=0)
        with_tags = MemoryModel(distinct_tag_entry=1000)
        delta = with_tags.document_bytes(doc) - base.document_bytes(doc)
        assert delta == 1000 * 4  # r, a, b, c

    def test_text_bytes_cost(self):
        document = parse_document("<r>12345</r>")
        zero = MemoryModel(text_byte=0)
        one = MemoryModel(text_byte=1)
        assert one.document_bytes(document) - zero.document_bytes(document) == 5


class TestQueryEngine:
    def test_xpath_report(self, doc):
        engine = QueryEngine(doc)
        report = engine.run("//a")
        assert report.result_count == 2
        assert report.document_nodes == doc.size()
        assert report.total_bytes > 0
        assert report.nodes_touched > 0

    def test_xquery_autodetected(self, doc):
        engine = QueryEngine(doc)
        report = engine.run("for $x in /r/a return $x")
        assert report.result_count == 2

    def test_run_serialized_stable(self, doc):
        engine = QueryEngine(doc)
        assert engine.run_serialized("//a") == engine.run_serialized("//a")

    def test_load_budget_enforced(self, doc):
        with pytest.raises(BudgetExceededError) as excinfo:
            QueryEngine(doc, memory_budget=10)
        assert excinfo.value.used > excinfo.value.budget

    def test_eval_budget_enforced(self, doc):
        needed = DEFAULT_MODEL.document_bytes(doc)
        engine = QueryEngine(doc, memory_budget=needed + 1)
        with pytest.raises(BudgetExceededError):
            engine.run("//node()")

    def test_generous_budget_passes(self, doc):
        engine = QueryEngine(doc, memory_budget=10**9)
        engine.run("//a")


class TestLargestProcessable:
    def test_extrapolation_is_linear(self, doc):
        size = len(serialize(doc))
        at_budget = largest_processable_megabytes(doc, size, 10**6)
        at_double = largest_processable_megabytes(doc, size, 2 * 10**6)
        assert at_double == pytest.approx(2 * at_budget)

    def test_pruned_documents_extrapolate_larger(self, xmark):
        """The Table 1 phenomenon: under the same budget, a pruned
        document admits a (much) larger on-disk original."""
        from repro.core.pipeline import analyze
        from repro.projection.tree import prune_document
        from repro.workloads.xmark import XMARK_QUERIES

        grammar, document, interpretation = xmark
        projector = analyze(grammar, XMARK_QUERIES["QM01"], language="xquery").projector
        pruned = prune_document(document, interpretation, projector)
        budget = 512 * 10**6
        original_size = len(serialize(document))
        unpruned_max = largest_processable_megabytes(document, original_size, budget)
        # For the pruned run the on-disk size is still the *original* file.
        pruned_max = largest_processable_megabytes(pruned, original_size, budget)
        assert pruned_max > 5 * unpruned_max
