"""Figure 2 projector-inference tests: shapes, paper examples, soundness
and the materialisation variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import infer_type
from repro.core.projector import infer_projector, materialized_projector
from repro.dtd.grammar import grammar_from_productions, text_name
from repro.dtd.regex import Atom, Epsilon, Seq
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.randomgen import random_grammar, random_pathl, random_valid_document
from repro.xpath.xpathl import evaluate_pathl, parse_pathl


def A(name):
    return Atom(name)


class TestShapes:
    def test_result_is_always_a_projector(self, book_grammar):
        for text in [
            "child::book/child::title",
            "descendant::author",
            "descendant-or-self::node()/parent::node()",
            "child::book[child::price or child::year]/child::author",
            "child::nothing",
        ]:
            projector = infer_projector(book_grammar, parse_pathl(text))
            assert book_grammar.is_projector(projector), text

    def test_simple_chain(self, book_grammar):
        projector = infer_projector(book_grammar, parse_pathl("child::book/child::title"))
        assert projector == {"bib", "book", "title"}

    def test_descendant_discards_non_ancestors(self, book_grammar):
        projector = infer_projector(book_grammar, parse_pathl("descendant::price"))
        assert projector == {"bib", "book", "price"}
        assert "author" not in projector

    def test_condition_data_is_collected(self, book_grammar):
        projector = infer_projector(
            book_grammar, parse_pathl("child::book[child::year]/child::title")
        )
        assert "year" in projector and "title" in projector

    def test_condition_filters_projector(self, book_grammar):
        # [child::isbn] can never hold: everything below book is pruned.
        projector = infer_projector(
            book_grammar, parse_pathl("child::book[child::isbn]/child::title")
        )
        assert projector == {"bib"}

    def test_dead_path_keeps_only_root(self, book_grammar):
        projector = infer_projector(book_grammar, parse_pathl("child::title"))
        assert projector == {"bib"}

    def test_upward_steps(self, book_grammar):
        projector = infer_projector(
            book_grammar, parse_pathl("descendant::author/parent::node()/child::title")
        )
        assert projector == {"bib", "book", "author", "title"}

    def test_attribute_step(self, book_grammar):
        projector = infer_projector(book_grammar, parse_pathl("child::book/attribute::isbn"))
        assert "book@isbn" in projector

    def test_text_step(self, book_grammar):
        projector = infer_projector(
            book_grammar, parse_pathl("child::book/child::author/child::text()")
        )
        assert text_name("author") in projector


class TestPaperCompletenessExamples:
    """The three Section 4.2 examples showing why strong specification is
    needed — our inference must reproduce exactly the documented outcome."""

    @pytest.fixture()
    def grammar(self):
        # {X -> a[Y,W], W -> c[], Y -> b[Z], Z -> d[]}
        return grammar_from_productions(
            "X",
            {
                "X": ("a", Seq([A("Y"), A("W")])),
                "W": ("c", Epsilon()),
                "Y": ("b", A("Z")),
                "Z": ("d", Epsilon()),
            },
        )

    def test_self_a_child_node_includes_W(self, grammar):
        # self::a[child::node]: the optimal projector is {X, Y}, but the
        # condition self::...node makes the system include W too.
        projector = infer_projector(grammar, parse_pathl("self::a[child::node()]"))
        assert {"X", "Y", "W"} <= projector

    def test_backward_axis_in_predicate_keeps_W_and_Z(self, grammar):
        projector = infer_projector(
            grammar, parse_pathl("self::a[descendant::node()/ancestor::a]")
        )
        assert {"W", "Z"} <= projector

    def test_disjunctive_predicate_breaks_completeness(self, grammar):
        projector = infer_projector(grammar, parse_pathl("self::a[child::b or child::c]"))
        # Both branches' data stays: W (tag c) as well as Y (tag b).
        assert {"X", "Y", "W"} <= projector


class TestMaterialization:
    def test_materialized_adds_answer_subtrees(self, book_grammar):
        plain = infer_projector(book_grammar, parse_pathl("child::book"))
        materialized = materialized_projector(book_grammar, parse_pathl("child::book"))
        assert plain == {"bib", "book"}
        assert text_name("title") in materialized
        assert "book@isbn" in materialized
        assert plain < materialized

    def test_materialized_is_projector(self, book_grammar):
        projector = materialized_projector(
            book_grammar, parse_pathl("descendant::author/parent::node()")
        )
        assert book_grammar.is_projector(projector)


# -- Theorem 4.5: soundness of projector inference --------------------------------


def _assert_sound(grammar, document, pathl):
    interpretation = validate(document, grammar)
    projector = infer_projector(grammar, pathl)
    assert grammar.is_projector(projector)
    if grammar.root not in projector:
        projector = projector | {grammar.root}
    pruned = prune_document(document, interpretation, projector)
    original = sorted(node.node_id for node in evaluate_pathl(document, pathl))
    after = sorted(node.node_id for node in evaluate_pathl(pruned, pathl))
    assert original == after, (str(pathl), projector)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 20_000), st.integers(0, 20_000), st.integers(0, 20_000))
def test_theorem_4_5_soundness_random(grammar_seed, document_seed, path_seed):
    grammar = random_grammar(grammar_seed, allow_recursion=grammar_seed % 3 == 0)
    document = random_valid_document(grammar, document_seed, max_depth=10)
    pathl = random_pathl(grammar, path_seed)
    _assert_sound(grammar, document, pathl)


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 20_000), st.integers(0, 20_000))
def test_theorem_4_5_on_book_documents(book_grammar, document_seed, path_seed):
    document = random_valid_document(book_grammar, document_seed)
    pathl = random_pathl(book_grammar, path_seed)
    _assert_sound(book_grammar, document, pathl)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 20_000), st.integers(0, 20_000), st.integers(0, 20_000))
def test_materialized_projector_preserves_subtrees(grammar_seed, document_seed, path_seed):
    """With materialisation, the answers' *serialised subtrees* coincide."""
    from repro.xmltree.serializer import serialize

    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)
    pathl = random_pathl(grammar, path_seed, with_conditions=False)

    projector = materialized_projector(grammar, pathl)
    pruned = prune_document(document, interpretation, projector | {grammar.root})

    original = {node.node_id: node for node in evaluate_pathl(document, pathl)}
    after = {node.node_id: node for node in evaluate_pathl(pruned, pathl)}
    assert original.keys() == after.keys()
    for node_id, node in original.items():
        assert serialize(after[node_id]) == serialize(node)
