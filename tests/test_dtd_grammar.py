"""Local tree grammar tests: lowering, reachability, projector algebra."""

import pytest

from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    TextProduction,
    attribute_name,
    grammar_from_productions,
    grammar_from_text,
    is_attribute_name,
    is_text_name,
    text_name,
)
from repro.dtd.regex import Atom, Epsilon, Seq, Star
from repro.errors import GrammarError, ProjectorError


class TestLowering:
    def test_names_include_text_and_attribute_names(self, book_grammar):
        names = book_grammar.names()
        assert "book" in names
        assert text_name("title") in names
        assert attribute_name("book", "isbn") in names

    def test_text_name_occurs_exactly_once_heuristic(self, book_grammar):
        """The Section 6 heuristic: every Y -> String occurs in exactly one
        right-hand side."""
        for candidate in book_grammar.text_names():
            owners = [
                name for name in book_grammar.names()
                if candidate in book_grammar.children_of(name)
            ]
            assert len(owners) == 1, candidate

    def test_empty_content_model(self):
        grammar = grammar_from_text("<!ELEMENT a EMPTY>", "a")
        production = grammar.production("a")
        assert isinstance(production, ElementProduction)
        assert production.regex == Epsilon()

    def test_any_content_references_all_elements_and_text(self):
        grammar = grammar_from_text("<!ELEMENT a ANY><!ELEMENT b EMPTY>", "a")
        children = grammar.children_of("a")
        assert {"a", "b", text_name("a")} <= children

    def test_undeclared_reference_rejected(self):
        with pytest.raises(GrammarError):
            grammar_from_text("<!ELEMENT a (ghost)>", "a")

    def test_unknown_root_rejected(self):
        with pytest.raises(GrammarError):
            grammar_from_text("<!ELEMENT a EMPTY>", "nope")

    def test_duplicate_tag_rejected(self):
        with pytest.raises(GrammarError):
            Grammar(
                "x",
                [
                    ElementProduction("x", "same", Epsilon()),
                    ElementProduction("y", "same", Epsilon()),
                ],
            )

    def test_name_kind_predicates(self):
        assert is_text_name("a#text")
        assert not is_text_name("a")
        assert is_attribute_name("a@id")
        assert not is_attribute_name("a#text")


class TestReachability:
    def test_successors_and_parents(self, book_grammar):
        assert "title" in book_grammar.children_of("book")
        assert attribute_name("book", "isbn") in book_grammar.successors_of("book")
        assert book_grammar.parents_of("title") == {"book"}

    def test_descendants_are_transitive(self, book_grammar):
        descendants = book_grammar.descendants_of("bib")
        assert text_name("author") in descendants
        assert "bib" not in descendants  # non-recursive: not reflexive

    def test_ancestors(self, book_grammar):
        assert book_grammar.ancestors_of(text_name("title")) == {"title", "book", "bib"}

    def test_reachable_names_cover_everything_in_a_connected_dtd(self, book_grammar):
        assert book_grammar.reachable_names() == book_grammar.names()

    def test_recursive_reachability(self):
        grammar = grammar_from_productions(
            "X", {"X": ("a", Star(Atom("X")))}
        )
        assert grammar.descendants_of("X") == {"X"}


class TestProjectorAlgebra:
    def test_empty_set_is_a_projector(self, book_grammar):
        assert book_grammar.is_projector(frozenset())

    def test_root_alone_is_a_projector(self, book_grammar):
        assert book_grammar.is_projector({"bib"})

    def test_chain_closed_set_is_a_projector(self, book_grammar):
        assert book_grammar.is_projector({"bib", "book", "title", text_name("title")})

    def test_missing_link_is_not_a_projector(self, book_grammar):
        assert not book_grammar.is_projector({"bib", "title"})  # book missing
        assert not book_grammar.is_projector({"book", "title"})  # root missing

    def test_unknown_name_is_not_a_projector(self, book_grammar):
        assert not book_grammar.is_projector({"bib", "ghost"})

    def test_check_projector_raises(self, book_grammar):
        with pytest.raises(ProjectorError):
            book_grammar.check_projector({"title"})

    def test_projector_closure_adds_ancestors(self, book_grammar):
        closure = book_grammar.projector_closure([text_name("author")])
        assert closure == {"bib", "book", "author", text_name("author")}
        assert book_grammar.is_projector(closure)

    def test_union_of_projectors_is_a_projector(self, book_grammar):
        left = book_grammar.projector_closure(["title"])
        right = book_grammar.projector_closure(["price"])
        union = book_grammar.union_projectors([left, right])
        assert book_grammar.is_projector(union)
        assert "title" in union and "price" in union

    def test_descendant_closure_includes_attributes(self, book_grammar):
        closed = book_grammar.descendant_closure({"book"})
        assert attribute_name("book", "isbn") in closed
        assert text_name("year") in closed

    def test_attribute_names_are_projectable(self, book_grammar):
        projector = book_grammar.projector_closure([attribute_name("book", "isbn")])
        assert book_grammar.is_projector(projector)


class TestDirectConstruction:
    def test_paper_notation(self):
        grammar = grammar_from_productions(
            "X",
            {
                "X": ("c", Seq([Atom("Y"), Atom("Z")])),
                "Y": ("a", Epsilon()),
                "Z": ("b", Epsilon()),
            },
        )
        assert grammar.name_of_tag("c") == "X"
        assert grammar.tag_of("Y") == "a"
        assert grammar.children_of("X") == {"Y", "Z"}

    def test_text_production_via_none(self):
        grammar = grammar_from_productions(
            "X", {"X": ("a", Atom("S")), "S": None}
        )
        assert isinstance(grammar.production("S"), TextProduction)

    def test_duplicate_name_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("x", [ElementProduction("x", "a", Epsilon()), TextProduction("x")])
