"""Streaming pruner tests: equivalence with Def 2.7, validation mode,
stats, constant-memory structure."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.grammar import text_name
from repro.dtd.validator import validate
from repro.errors import ProjectorError, ValidationError
from repro.api import prune
from repro.projection.streaming import StreamingPruner
from repro.projection.tree import prune_document
from repro.workloads.randomgen import random_grammar, random_valid_document
from repro.xmltree.builder import build_tree, parse_document
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import serialize
from tests.conftest import BOOK_XML


class TestStreamingEqualsTree:
    def _both(self, grammar, xml, projector):
        document = parse_document(xml)
        interpretation = validate(document, grammar)
        tree_pruned = prune_document(document, interpretation, projector)
        streamed = prune(xml, grammar, projector).text
        return serialize(tree_pruned), streamed

    def test_on_books(self, book_grammar):
        projector = book_grammar.projector_closure(["author", text_name("author")])
        tree, stream = self._both(book_grammar, BOOK_XML, projector)
        assert tree == stream

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
    def test_random(self, grammar_seed, document_seed, selection_seed):
        import random

        grammar = random_grammar(grammar_seed)
        document = random_valid_document(grammar, document_seed)
        rng = random.Random(selection_seed)
        projector = grammar.projector_closure(
            [name for name in sorted(grammar.reachable_names()) if rng.random() < 0.4]
            or [grammar.root]
        ) | {grammar.root}
        interpretation = validate(document, grammar)
        tree_pruned = serialize(prune_document(document, interpretation, projector))
        streamed = prune(serialize(document), grammar, projector).text
        assert streamed == tree_pruned


class TestStreamingBehaviour:
    def test_projector_must_keep_root(self, book_grammar):
        with pytest.raises(ProjectorError):
            StreamingPruner(book_grammar, frozenset())

    def test_non_projector_rejected(self, book_grammar):
        with pytest.raises(ProjectorError):
            StreamingPruner(book_grammar, frozenset({"bib", "title"}))

    def test_undeclared_element_raises_without_validator(self, book_grammar):
        pruner = StreamingPruner(book_grammar, frozenset({"bib"}))
        with pytest.raises(ValidationError):
            list(pruner.process(parse_events("<bib><mystery/></bib>")))

    def test_validating_mode_rejects_invalid_content(self, book_grammar):
        events = parse_events("<bib><book><author>a</author><title>t</title></book></bib>")
        with pytest.raises(ValidationError):
            list(prune(events, book_grammar, frozenset({"bib"}), validate=True).events)

    def test_validating_mode_checks_even_pruned_regions(self, book_grammar):
        # The projector drops <book>, but validation still sees the
        # invalid order inside it (prune-while-validate, Section 6).
        events = parse_events("<bib><book><author>a</author><title>t</title></book></bib>")
        projector = frozenset({"bib"})
        with pytest.raises(ValidationError):
            list(prune(events, book_grammar, projector, validate=True).events)

    def test_comments_and_pis_pass_through(self, book_grammar):
        xml = "<bib><!--note--><?pi data?></bib>"
        pruned = prune(xml, book_grammar, frozenset({"bib"})).text
        assert "<!--note-->" in pruned and "<?pi data?>" in pruned

    @pytest.mark.parametrize("fast", [True, False])
    def test_misc_inside_pruned_subtree_is_dropped(self, book_grammar, fast):
        # Regression: comments/PIs inside a discarded subtree used to leak
        # through (the skip-depth guard only covered element and text
        # events), detaching them from their dropped context.
        xml = ("<bib><book><title>t<!--inner--></title>"
               "<author>a<?proc data?></author></book>"
               "<!--kept: bib level--></bib>")
        pruned = prune(xml, book_grammar, frozenset({"bib"}), fast=fast).text
        assert "inner" not in pruned and "proc" not in pruned
        assert "<!--kept: bib level-->" in pruned

    def test_stats_populated(self, book_grammar):
        projector = book_grammar.projector_closure(["title", text_name("title")])
        stats = prune(BOOK_XML, book_grammar, projector).stats
        assert stats.elements_in > stats.elements_out > 0
        assert stats.bytes_in > stats.bytes_out > 0
        assert stats.distinct_tags_out < stats.distinct_tags_in

    def test_prune_stream_file_objects(self, book_grammar):
        sink = io.StringIO()
        stats = prune(
            io.StringIO(BOOK_XML), book_grammar,
            book_grammar.projector_closure(["title"]), out=sink,
        ).stats
        assert "<title/>" in sink.getvalue()
        assert stats.bytes_out == len(sink.getvalue())

    def test_pruned_output_is_valid_when_projector_is_wellformed(self, book_grammar):
        # Pruning with a projector that keeps required children intact
        # yields a document that still validates.
        projector = book_grammar.projector_closure(
            ["title", text_name("title"), "author", text_name("author")]
        )
        pruned = prune(BOOK_XML, book_grammar, projector).text
        validate(parse_document(pruned), book_grammar)

    def test_depth_only_state(self, book_grammar):
        """The pruner's state is bounded by depth: after processing, its
        open-tag stack is empty and no node buffers exist."""
        pruner = StreamingPruner(book_grammar, frozenset({"bib"}))
        list(pruner.process(parse_events(BOOK_XML)))
        assert pruner._open_names == []
        assert pruner._skip_depth == 0


class TestByteAccounting:
    @pytest.mark.parametrize("fast", [True, False])
    def test_prune_string_counts_utf8_bytes(self, book_grammar, fast):
        # Regression: bytes_in was len(text) — *code points* — while
        # prune_file reports os.path.getsize — UTF-8 *bytes* — skewing
        # size ratios on non-ASCII documents.
        xml = "<bib><book><title>Ærøskøbing — ☃</title><author>ø</author></book></bib>"
        stats = prune(xml, book_grammar, frozenset({"bib"}), fast=fast).stats
        assert stats.bytes_in == len(xml.encode("utf-8"))
        assert stats.bytes_in > len(xml)

    def test_prune_string_matches_prune_file_accounting(self, book_grammar, tmp_path):
        xml = "<bib><book><title>naïve ☃</title><author>a</author></book></bib>"
        source = tmp_path / "in.xml"
        source.write_text(xml, encoding="utf-8")
        file_stats = prune(
            str(source), book_grammar, frozenset({"bib"}),
            out=str(tmp_path / "out.xml"),
        ).stats
        string_stats = prune(xml, book_grammar, frozenset({"bib"})).stats
        assert string_stats.bytes_in == file_stats.bytes_in


class TestPruneFileCleanup:
    @pytest.mark.parametrize("fast", [True, False])
    def test_partial_output_removed_on_parse_error(self, book_grammar, tmp_path, fast):
        # Regression: a mid-stream parse failure used to leave a truncated
        # half-pruned document behind, indistinguishable from a good run.
        from repro.errors import XMLSyntaxError

        source = tmp_path / "bad.xml"
        # Large valid prefix (forces buffered output to be flushed to
        # disk before the error), then a mismatched closing tag.
        books = "".join(
            f"<book><title>t{i}</title><author>a</author></book>" for i in range(3000)
        )
        source.write_text(f"<bib>{books}<book><title>x</author></book></bib>")
        output = tmp_path / "out.xml"
        with pytest.raises(XMLSyntaxError):
            prune(str(source), book_grammar,
                  book_grammar.projector_closure(["title", text_name("title")]),
                  out=str(output), fast=fast)
        assert not output.exists()

    def test_validation_failure_also_cleans_up(self, book_grammar, tmp_path):
        source = tmp_path / "invalid.xml"
        source.write_text("<bib><book><author>a</author><title>t</title></book></bib>")
        output = tmp_path / "out.xml"
        with pytest.raises(ValidationError):
            prune(str(source), book_grammar, frozenset({"bib"}),
                  out=str(output), validate=True)
        assert not output.exists()

    def test_missing_input_preserves_existing_output(self, book_grammar, tmp_path):
        # Opening the input fails *before* the output is touched — a
        # pre-existing file at the output path must survive.
        output = tmp_path / "precious.xml"
        output.write_text("<bib/>")
        with pytest.raises(FileNotFoundError):
            prune(str(tmp_path / "nope.xml"), book_grammar, frozenset({"bib"}),
                  out=str(output))
        assert output.read_text() == "<bib/>"

    @staticmethod
    def _deny_writes_to(monkeypatch, path: str):
        """Make opening ``path`` for writing fail, as an unwritable
        location would (the test runs as root, where real permission
        bits don't bite)."""
        import builtins

        real_open = builtins.open

        def guarded(file, mode="r", *args, **kwargs):
            if "w" in mode and str(file) == path:
                raise PermissionError(13, "Permission denied", str(file))
            return real_open(file, mode, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", guarded)

    def test_unwritable_output_preserves_existing_file(
        self, book_grammar, tmp_path, monkeypatch
    ):
        # Regression: the unified facade's cleanup used to fire even when
        # the output could not be *opened*, deleting a pre-existing file
        # that the failed run never wrote to (file -> file branch).
        source = tmp_path / "in.xml"
        source.write_text(BOOK_XML)
        output = tmp_path / "precious.xml"
        output.write_text("<bib/>")
        self._deny_writes_to(monkeypatch, str(output))
        with pytest.raises(PermissionError):
            prune(str(source), book_grammar, frozenset({"bib"}), out=str(output))
        assert output.read_text() == "<bib/>"

    def test_unwritable_output_preserves_existing_file_markup_source(
        self, book_grammar, tmp_path, monkeypatch
    ):
        # Same contract on the markup -> path branch, which goes through
        # the facade's own output handling rather than _prune_file.
        output = tmp_path / "precious.xml"
        output.write_text("<bib/>")
        self._deny_writes_to(monkeypatch, str(output))
        with pytest.raises(PermissionError):
            prune(BOOK_XML, book_grammar, frozenset({"bib"}), out=str(output))
        assert output.read_text() == "<bib/>"

    def test_markup_source_midstream_failure_removes_partial_output(
        self, book_grammar, tmp_path
    ):
        # The markup -> path branch shares _open_output with _prune_file:
        # a mid-stream failure must still remove the partial file.
        from repro.errors import XMLSyntaxError

        output = tmp_path / "out.xml"
        with pytest.raises(XMLSyntaxError):
            prune("<bib><book><title>x</author></book></bib>", book_grammar,
                  frozenset({"bib"}), out=str(output))
        assert not output.exists()


class TestEventRoundTrip:
    def test_pruned_events_build_a_valid_tree(self, book_grammar):
        projector = book_grammar.projector_closure(["author", text_name("author")])
        events = prune(parse_events(BOOK_XML), book_grammar, projector).events
        document = build_tree(events)
        assert {node.tag for node in document.elements()} == {"bib", "book", "author"}
