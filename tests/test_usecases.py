"""Use Cases corpus tests — the Section 4.1 survey and the XHTML-scale DTD."""

import pytest

from repro.core.pipeline import analyze
from repro.workloads.usecases import (
    USE_CASES,
    classify_corpus,
    use_case_grammar,
    xhtml_grammar,
)


class TestCorpus:
    def test_all_ten_lower(self):
        assert len(USE_CASES) == 10
        for case in USE_CASES:
            grammar = use_case_grammar(case.name)
            assert grammar.root == case.root

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            use_case_grammar("nope")

    def test_section_4_1_survey_counts(self):
        """Paper: "among the ten DTDs defined in the Use Cases, seven are
        both non-recursive and *-guarded, one is only *-guarded, one is
        only non-recursive, and just one does not satisfy either
        property" — and "five on the ten DTDs" are parent-unambiguous."""
        classification = classify_corpus()
        both = sum(
            1 for p in classification.values() if p.star_guarded and not p.recursive
        )
        only_guarded = sum(
            1 for p in classification.values() if p.star_guarded and p.recursive
        )
        only_nonrecursive = sum(
            1 for p in classification.values() if not p.star_guarded and not p.recursive
        )
        neither = sum(
            1 for p in classification.values() if not p.star_guarded and p.recursive
        )
        unambiguous = sum(1 for p in classification.values() if p.parent_unambiguous)
        assert (both, only_guarded, only_nonrecursive, neither) == (7, 1, 1, 1)
        assert unambiguous == 5

    def test_known_classifications(self):
        classification = classify_corpus()
        assert not classification["XMP"].star_guarded  # (author+ | editor+)
        assert classification["TREE"].recursive  # nested sections
        assert classification["PARTS"].recursive
        assert not classification["PARTS"].star_guarded
        assert classification["R"].completeness_class

    def test_analysis_runs_on_every_use_case(self):
        """Projector inference works across the whole corpus (a smoke
        sweep with a generic descendant query per DTD)."""
        for case in USE_CASES:
            grammar = use_case_grammar(case.name)
            leafish = sorted(grammar.children_of(grammar.root))[0]
            production = grammar.production(leafish)
            from repro.dtd.grammar import ElementProduction

            assert isinstance(production, ElementProduction)
            result = analyze(grammar, [f"//{production.tag}"])
            assert grammar.root in result.projector


class TestXHTMLScale:
    def test_lowering(self):
        grammar = xhtml_grammar()
        assert len(grammar.names()) > 90
        assert "table" in grammar.names()

    def test_parameter_entities_expanded(self):
        grammar = xhtml_grammar()
        # %inline; inside <p>'s model must have been textually expanded.
        assert "strong" in grammar.children_of("p")
        assert "blockquote" in grammar.children_of("body")

    def test_analysis_time_on_large_recursive_dtd(self):
        """The Section 6 claim on large DTDs: analysis stays well under
        half a second even for XHTML-scale recursive grammars."""
        grammar = xhtml_grammar()
        result = analyze(
            grammar,
            [
                "//div//table/tr/td//a",
                "/html/body//ul/li[a]/span",
                "//blockquote/ancestor::div/p",
            ],
        )
        assert result.analysis_seconds < 0.5
        assert grammar.is_projector(result.projector)

    def test_pruning_an_xhtml_document(self):
        from repro.dtd.validator import validate
        from repro.projection.tree import prune_document
        from repro.xmltree.builder import parse_document
        from repro.xpath.evaluator import XPathEvaluator

        grammar = xhtml_grammar()
        document = parse_document(
            "<html><head><title>t</title></head>"
            "<body><div><p>intro <a href='x'>link</a></p>"
            "<table><tr><td>cell</td></tr></table></div>"
            "<ul><li>one</li><li><a href='y'>two</a></li></ul></body></html>"
        )
        interpretation = validate(document, grammar)
        query = "//li/a"
        result = analyze(grammar, [query])
        pruned = prune_document(document, interpretation, result.projector)
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        )
        tags = {node.tag for node in pruned.elements()}
        # head/title can never lead to an li: pruned.  table must survive —
        # XHTML is recursive, an li can nest under td.
        assert "head" not in tags and "title" not in tags
        assert "table" in tags
        assert pruned.size() < document.size()
