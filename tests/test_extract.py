"""The tabular extraction surface: spec validation, the extract facade
across every source/sink shape, NULL semantics, limits governance, and
the spec-keyed projector cache.

Byte-level agreement between the fused scan, the event pipeline, and the
tree-walk oracle over random workloads lives in ``test_differential.py``;
this module pins the API contract on the running-example bibliography.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import ExtractOptions, ExtractResult, ExtractSpec, Limits, extract
from repro.core.cache import ProjectorCache, resolve_spec_projector
from repro.errors import LimitExceeded, ReproError
from repro.extract.reference import extract_document, reference_records
from repro.extract.stats import ExtractStats
from repro.xmltree.parser import parse_events
from tests.conftest import BOOK_DTD, BOOK_XML

SPEC = ExtractSpec(
    rows="/bib/book",
    fields={"title": "title/text()", "author": "author/text()",
            "year": "year/text()", "isbn": "@isbn"},
)


# -- spec validation ----------------------------------------------------------


class TestSpecValidation:
    def test_rows_must_be_absolute(self):
        with pytest.raises(ReproError, match="absolute"):
            ExtractSpec(rows="bib/book", fields={"t": "text()"})

    def test_rows_rejects_descendant_steps(self):
        with pytest.raises(ReproError, match="descendant"):
            ExtractSpec(rows="//book", fields={"t": "text()"})

    def test_rows_rejects_wildcards(self):
        with pytest.raises(ReproError, match="not supported"):
            ExtractSpec(rows="/bib/*", fields={"t": "text()"})

    def test_field_path_must_be_relative(self):
        with pytest.raises(ReproError, match="relative"):
            ExtractSpec(rows="/bib/book", fields={"t": "/title/text()"})

    def test_field_rejects_empty_step(self):
        with pytest.raises(ReproError, match="empty step"):
            ExtractSpec(rows="/bib/book", fields={"t": "title/"})

    def test_field_rejects_bad_attribute_name(self):
        with pytest.raises(ReproError, match="attribute name"):
            ExtractSpec(rows="/bib/book", fields={"t": "@1bad"})

    def test_at_least_one_field(self):
        with pytest.raises(ReproError, match="at least one field"):
            ExtractSpec(rows="/bib/book", fields={})

    def test_null_must_be_string_or_none(self):
        with pytest.raises(ReproError, match="null"):
            ExtractSpec(rows="/bib/book", fields={"t": "text()"}, null=0)

    def test_compiled_fields_preserve_declared_order(self):
        assert [f.name for f in SPEC.compiled_fields()] == [
            "title", "author", "year", "isbn"
        ]
        kinds = {f.name: f.kind for f in SPEC.compiled_fields()}
        assert kinds == {"title": "text", "author": "text",
                         "year": "text", "isbn": "attribute"}


class TestSpecIdentity:
    def test_fingerprint_is_stable(self):
        clone = ExtractSpec(rows=SPEC.rows, fields=dict(SPEC.fields))
        assert clone.fingerprint() == SPEC.fingerprint()
        assert hash(clone) == hash(SPEC)

    def test_fingerprint_sees_field_order(self):
        reordered = ExtractSpec(
            rows="/bib/book", fields={"b": "text()", "a": "@isbn"}
        )
        original = ExtractSpec(
            rows="/bib/book", fields={"a": "@isbn", "b": "text()"}
        )
        assert reordered.fingerprint() != original.fingerprint()

    def test_wire_round_trip(self):
        spec = ExtractSpec(rows="/bib/book",
                           fields={"t": "title/text()"}, null="-")
        assert ExtractSpec.from_wire(spec.to_wire()) == spec

    def test_wire_rejects_unknown_keys(self):
        wire = SPEC.to_wire()
        wire["bogus"] = 1
        with pytest.raises(ValueError, match="unknown extract spec"):
            ExtractSpec.from_wire(wire)

    def test_options_wire_round_trip(self):
        options = ExtractOptions(format="csv", fast=False,
                                 limits=Limits(max_depth=9))
        rebuilt = ExtractOptions.from_wire(options.to_wire())
        assert rebuilt.format == "csv" and rebuilt.fast is False
        assert rebuilt.limits.max_depth == 9

    def test_options_wire_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown extract option"):
            ExtractOptions.from_wire({"warp_speed": True})

    def test_options_reject_unknown_format(self):
        with pytest.raises(ReproError, match="unknown extract format"):
            ExtractOptions(format="parquet")

    def test_stats_wire_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            ExtractStats.from_dict({"rows_out": 1, "bogus": 2})


# -- the facade ---------------------------------------------------------------


class TestExtractFacade:
    def test_markup_to_records_and_text(self, book_grammar):
        result = extract(BOOK_XML, book_grammar, SPEC)
        assert isinstance(result, ExtractResult)
        assert [row["title"] for row in result.records] == [
            "Divina Commedia", "Moby-Dick", "Vita Nova"
        ]
        assert result.records[2]["year"] is None  # Vita Nova has no year
        assert result.records[0]["isbn"] == "d1"
        lines = [json.loads(line) for line in result.text.splitlines()]
        assert lines == result.records
        assert result.stats.rows_out == 3
        assert result.stats.nulls_out == 1
        assert result.stats.fields_out == 3 * 4 - 1

    def test_result_iterates_records(self, book_grammar):
        result = extract(BOOK_XML, book_grammar, SPEC)
        assert list(result) == result.records

    def test_result_without_records_refuses_iteration(self, book_grammar):
        result = extract(BOOK_XML, book_grammar, SPEC, out=io.StringIO())
        with pytest.raises(TypeError, match="no records"):
            iter(result)

    def test_path_source_and_path_out(self, book_grammar, tmp_path):
        source = tmp_path / "bib.xml"
        source.write_text(BOOK_XML)
        target = tmp_path / "books.jsonl"
        result = extract(str(source), book_grammar, SPEC, out=str(target))
        assert result.output_path == str(target)
        assert result.records is None and result.text is None
        assert len(target.read_text().splitlines()) == 3
        assert result.stats.bytes_in == len(BOOK_XML)

    def test_stream_source_and_stream_out(self, book_grammar):
        sink = io.StringIO()
        result = extract(io.StringIO(BOOK_XML), book_grammar, SPEC, out=sink)
        assert result.stats.rows_out == 3
        assert sink.getvalue().count("\n") == 3

    def test_event_source(self, book_grammar):
        via_events = extract(parse_events(BOOK_XML), book_grammar, SPEC)
        direct = extract(BOOK_XML, book_grammar, SPEC)
        assert via_events.records == direct.records

    def test_bad_source_type_refused(self, book_grammar):
        with pytest.raises(TypeError, match="cannot extract"):
            extract(42, book_grammar, SPEC)

    def test_csv_format(self, book_grammar):
        result = extract(BOOK_XML, book_grammar, SPEC, format="csv")
        lines = result.text.splitlines()
        assert lines[0] == "title,author,year,isbn"
        assert lines[1].startswith("Divina Commedia,Dante,1320,d1")
        assert len(lines) == 4

    def test_null_spelling(self, book_grammar):
        spec = ExtractSpec(rows=SPEC.rows, fields=dict(SPEC.fields), null="?")
        result = extract(BOOK_XML, book_grammar, spec)
        assert result.records[2]["year"] == "?"
        assert '"year": "?"' in result.text.splitlines()[2].replace('":"', '": "')

    def test_value_field_takes_string_value(self, book_grammar):
        spec = ExtractSpec(rows="/bib", fields={"all_titles": "book"})
        result = extract(BOOK_XML, book_grammar, spec)
        # String value of the *first* book: all its descendant text.
        assert result.records == [
            {"all_titles": "Divina CommediaDante132012"}
        ]

    def test_forced_fallback_is_identical(self, book_grammar):
        fused = extract(BOOK_XML, book_grammar, SPEC)
        forced = extract(BOOK_XML, book_grammar, SPEC, fallback="force")
        assert forced.text == fused.text
        assert forced.records == fused.records

    def test_agrees_with_reference_oracle(self, book_grammar):
        result = extract(BOOK_XML, book_grammar, SPEC)
        assert result.records == reference_records(BOOK_XML, SPEC)

    def test_rows_path_that_matches_nothing(self, book_grammar):
        spec = ExtractSpec(rows="/bib/price", fields={"v": "text()"})
        result = extract(BOOK_XML, book_grammar, spec)
        assert result.records == [] and result.text == ""
        assert result.stats.rows_out == 0

    def test_present_element_without_text_is_empty_not_null(self, book_grammar):
        # <book> has no *direct* text, but it exists — "" per the spec
        # docstring, and byte-identical to the tree-walk oracle.
        spec = ExtractSpec(rows="/bib", fields={"t": "book/text()"})
        result = extract(BOOK_XML, book_grammar, spec)
        assert result.records == [{"t": ""}]
        assert result.records == reference_records(BOOK_XML, spec)


# -- governance ---------------------------------------------------------------


class TestExtractGovernance:
    def test_limits_refuse_hostile_depth(self, book_grammar):
        hostile = "<bib>" + "<book>" * 500
        with pytest.raises(LimitExceeded, match="depth"):
            extract(hostile, book_grammar, SPEC,
                    limits=Limits(max_depth=16))

    def test_malformed_markup_is_a_structured_error(self, book_grammar):
        with pytest.raises(ReproError):
            extract("<bib><book></bib>", book_grammar, SPEC)

    def test_failed_extract_removes_partial_output(self, book_grammar, tmp_path):
        target = tmp_path / "partial.jsonl"
        with pytest.raises(ReproError):
            extract("<bib><book></bib>", book_grammar, SPEC, out=str(target))
        assert not target.exists()


# -- the spec-keyed projector cache -------------------------------------------


class TestSpecProjectorCache:
    def test_repeat_extraction_hits_the_cache(self, book_grammar):
        cache = ProjectorCache()
        extract(BOOK_XML, book_grammar, SPEC, cache=cache)
        before = cache.stats.hits
        extract(BOOK_XML, book_grammar, SPEC, cache=cache)
        assert cache.stats.hits == before + 1

    def test_equal_specs_share_an_entry(self, book_grammar):
        cache = ProjectorCache()
        first = resolve_spec_projector(book_grammar, SPEC, cache=cache)
        clone = ExtractSpec(rows=SPEC.rows, fields=dict(SPEC.fields))
        second = resolve_spec_projector(book_grammar, clone, cache=cache)
        assert first == second
        assert cache.stats.hits >= 1

    def test_projector_covers_exactly_the_workload(self, book_grammar):
        projector = resolve_spec_projector(book_grammar, SPEC)
        assert "price" not in projector  # no field asks for prices
        assert {"bib", "book", "title", "author", "year"} <= projector


# -- the oracle itself --------------------------------------------------------


class TestReferenceOracle:
    def test_extract_document_matches_reference_records(self, book_document):
        assert extract_document(book_document, SPEC) == reference_records(
            BOOK_XML, SPEC
        )

    def test_missing_rows_root_yields_no_records(self, book_grammar):
        spec = ExtractSpec(rows="/catalog/item", fields={"t": "text()"})
        assert reference_records(BOOK_XML, spec) == []
