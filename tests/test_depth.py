"""Depth-heuristic tests (Section 6): grammar unfolding, precision on
recursive DTDs, and soundness through the unchanged pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.depth import (
    TOP,
    base_name,
    depth_name,
    depth_of,
    depth_unfolded_grammar,
    fold_names,
)
from repro.core.pipeline import analyze
from repro.core.projector import infer_projector
from repro.dtd.grammar import grammar_from_text
from repro.dtd.singletype import SingleTypeGrammar
from repro.dtd.validator import validate
from repro.api import prune
from repro.projection.tree import prune_document
from repro.workloads.randomgen import (
    random_grammar,
    random_pathl,
    random_valid_document,
)
from repro.xmltree.builder import parse_document
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.xpathl import evaluate_pathl

TREE_DTD = """
<!ELEMENT book (title, (p | section)*)>
<!ELEMENT section (title, (p | section)*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT p (#PCDATA)>
"""

TREE_XML = (
    "<book><title>B</title>"
    "<section><title>S1</title><p>x</p>"
    "<section><title>S1.1</title><p>deep</p>"
    "<section><title>S1.1.1</title></section>"
    "</section></section>"
    "<section><title>S2</title><p>y</p></section>"
    "</book>"
)


@pytest.fixture(scope="module")
def tree():
    grammar = grammar_from_text(TREE_DTD, "book")
    unfolded = depth_unfolded_grammar(grammar, max_depth=4)
    return grammar, unfolded


class TestUnfolding:
    def test_produces_single_type_grammar(self, tree):
        _, unfolded = tree
        assert isinstance(unfolded, SingleTypeGrammar)
        assert unfolded.root == depth_name("book", 0)

    def test_name_count(self, tree):
        grammar, unfolded = tree
        # (max_depth + 1 for the top bucket) copies of every name.
        assert len(unfolded.names()) == len(grammar.names()) * 5

    def test_name_roundtrip(self):
        assert base_name(depth_name("section", 3)) == "section"
        assert depth_of(depth_name("section", 3)) == 3
        assert depth_of(depth_name("section", TOP)) == TOP

    def test_valid_documents_stay_valid(self, tree):
        _, unfolded = tree
        document = parse_document(TREE_XML)
        interpretation = validate(document, unfolded)
        # The root maps to depth 0; its children to depth 1; …
        assert interpretation[document.root.node_id] == depth_name("book", 0)
        first_section = next(n for n in document.elements() if n.tag == "section")
        assert interpretation[first_section.node_id] == depth_name("section", 1)

    def test_depths_beyond_cap_land_in_top(self):
        grammar = grammar_from_text(TREE_DTD, "book")
        unfolded = depth_unfolded_grammar(grammar, max_depth=2)
        document = parse_document(TREE_XML)
        interpretation = validate(document, unfolded)
        deep_title = [
            interpretation[node.node_id]
            for node in document.elements()
            if node.tag == "title"
        ]
        assert depth_name("title", TOP) in deep_title

    def test_bad_max_depth(self):
        grammar = grammar_from_text(TREE_DTD, "book")
        with pytest.raises(ValueError):
            depth_unfolded_grammar(grammar, max_depth=0)

    def test_attributes_unfold(self):
        grammar = grammar_from_text(
            "<!ELEMENT a (b*)><!ELEMENT b EMPTY><!ATTLIST b k CDATA #IMPLIED>", "a"
        )
        unfolded = depth_unfolded_grammar(grammar, max_depth=3)
        assert depth_name("b", 1) + "@k" in unfolded.names()


class TestPrecision:
    def test_deep_recursion_is_pruned(self, tree):
        """The heuristic's raison d'être: /book/section/title keeps only
        depth-1 sections; the name projector keeps them at every depth."""
        grammar, unfolded = tree
        document = parse_document(TREE_XML)
        query = "/book/section/title"

        depth_projector = analyze(unfolded, [query]).projector
        name_projector = analyze(grammar, [query]).projector

        depth_pruned = prune_document(
            document, validate(document, unfolded), depth_projector
        )
        name_pruned = prune_document(
            document, validate(document, grammar), name_projector
        )
        assert depth_pruned.size() < name_pruned.size()
        assert "S1.1" not in serialize(depth_pruned)
        assert (
            XPathEvaluator(depth_pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        )

    def test_folded_projector_reports_depths(self, tree):
        _, unfolded = tree
        projector = analyze(unfolded, ["/book/section/title"]).projector
        folded = fold_names(projector)
        assert folded["section"] == {1}
        assert folded["book"] == {0}

    def test_descendant_queries_keep_all_depths(self, tree):
        """//title must keep titles at every depth (incl. the top bucket)
        — the heuristic must not over-prune descendant queries."""
        _, unfolded = tree
        document = parse_document(TREE_XML)
        query = "//title"
        projector = analyze(unfolded, [query]).projector
        pruned = prune_document(document, validate(document, unfolded), projector)
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        )
        folded = fold_names(projector)
        assert TOP in folded["title"]

    def test_streaming_pruner_agrees(self, tree):
        _, unfolded = tree
        projector = analyze(unfolded, ["/book/section/p"]).projector
        document = parse_document(TREE_XML)
        via_tree = serialize(
            prune_document(document, validate(document, unfolded), projector)
        )
        via_stream = prune(TREE_XML, unfolded, projector).text
        assert via_tree == via_stream


# -- soundness: Theorem 4.5 on unfolded grammars -------------------------------


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
def test_depth_unfolded_soundness(grammar_seed, document_seed, path_seed):
    grammar = random_grammar(grammar_seed, allow_recursion=grammar_seed % 2 == 0)
    unfolded = depth_unfolded_grammar(grammar, max_depth=4)
    document = random_valid_document(grammar, document_seed, max_depth=8)
    interpretation = validate(document, unfolded)
    pathl = random_pathl(grammar, path_seed)
    projector = infer_projector(unfolded, pathl) | {unfolded.root}
    pruned = prune_document(document, interpretation, projector)
    original = sorted(node.node_id for node in evaluate_pathl(document, pathl))
    after = sorted(node.node_id for node in evaluate_pathl(pruned, pathl))
    assert original == after
