"""id() function tests: evaluation and sound pruning approximation."""

import pytest

from repro.core.pipeline import analyze
from repro.dtd.validator import validate
from repro.errors import XPathTypeError
from repro.projection.tree import prune_document
from repro.xmltree.builder import parse_document
from repro.xpath.evaluator import XPathEvaluator, evaluate

DOC = parse_document(
    '<r>'
    '<people>'
    '<p id="p1"><n>Ada</n><ref to="p2"/></p>'
    '<p id="p2"><n>Brad</n><ref to="p1"/></p>'
    '</people>'
    '<log owner="p2">entry</log>'
    '</r>'
)

DTD = """
<!ELEMENT r (people, log)>
<!ELEMENT people (p*)>
<!ELEMENT p (n, ref)>
<!ATTLIST p id ID #REQUIRED>
<!ELEMENT n (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST ref to IDREF #REQUIRED>
<!ELEMENT log (#PCDATA)>
<!ATTLIST log owner IDREF #REQUIRED>
"""


class TestEvaluation:
    def test_lookup_by_literal(self):
        nodes = evaluate(DOC, "id('p1')")
        assert [node.tag for node in nodes] == ["p"]
        assert nodes[0].attributes["id"] == "p1"

    def test_lookup_multiple_tokens(self):
        nodes = evaluate(DOC, "id('p2 p1')")
        assert [node.attributes["id"] for node in nodes] == ["p1", "p2"]  # doc order

    def test_lookup_via_nodeset_argument(self):
        # id(//ref/@to): each node's string value is an id token.
        nodes = evaluate(DOC, "id(//ref/@to)")
        assert [node.attributes["id"] for node in nodes] == ["p1", "p2"]

    def test_missing_id_is_empty(self):
        assert evaluate(DOC, "id('ghost')") == []

    def test_continuation_path(self):
        names = [node.text_value() for node in evaluate(DOC, "id('p2')/n")]
        assert names == ["Brad"]

    def test_dereference_chain(self):
        # The log's owner is p2, whose ref points to p1.
        names = [node.text_value() for node in evaluate(DOC, "id(id(/r/log/@owner)/ref/@to)/n")]
        assert names == ["Ada"]

    def test_arity_checked(self):
        with pytest.raises(XPathTypeError):
            evaluate(DOC, "id()")


class TestPruningSoundness:
    @pytest.mark.parametrize(
        "query",
        [
            "id('p1')/n",
            "id(/r/log/@owner)/n",
            "/r/people/p[id(ref/@to)/n = 'Ada']/n",
        ],
    )
    def test_id_queries_survive_pruning(self, query):
        from repro.dtd.grammar import grammar_from_text

        grammar = grammar_from_text(DTD, "r")
        interpretation = validate(DOC, grammar)
        result = analyze(grammar, [query])
        pruned = prune_document(DOC, interpretation, result.projector)
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(DOC).select_ids(query)
        ), query

    def test_id_attributes_forced_into_projector(self):
        from repro.dtd.grammar import grammar_from_text

        grammar = grammar_from_text(DTD, "r")
        result = analyze(grammar, ["id('p1')/n"])
        assert "p@id" in result.projector
