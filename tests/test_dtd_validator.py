"""Validator tests: Def 2.4 validity and the interpretation ℑ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.grammar import grammar_from_text, text_name
from repro.dtd.validator import EventValidator, TreeValidator, validate
from repro.errors import ValidationError
from repro.workloads.randomgen import random_grammar, random_valid_document
from repro.xmltree.builder import parse_document
from repro.xmltree.nodes import Element, Text
from repro.xmltree.parser import parse_events


class TestTreeValidation:
    def test_valid_document_yields_full_interpretation(self, book_grammar, book_document):
        interpretation = validate(book_document, book_grammar)
        assert set(interpretation.names) == book_document.ids()

    def test_interpretation_maps_root_to_root_name(self, book_grammar, book_document):
        interpretation = validate(book_document, book_grammar)
        assert interpretation[book_document.root.node_id] == "bib"

    def test_text_nodes_get_per_element_text_names(self, book_grammar, book_document):
        interpretation = validate(book_document, book_grammar)
        for node in book_document.iter():
            if isinstance(node, Text):
                assert interpretation[node.node_id] == text_name(node.parent.tag)

    def test_wrong_root_rejected(self, book_grammar):
        with pytest.raises(ValidationError):
            validate(parse_document("<book/>"), book_grammar)

    def test_missing_required_child_rejected(self, book_grammar):
        document = parse_document("<bib><book><author>x</author></book></bib>")
        with pytest.raises(ValidationError) as excinfo:
            validate(document, book_grammar)
        assert "book" in str(excinfo.value)

    def test_wrong_child_order_rejected(self, book_grammar):
        document = parse_document(
            "<bib><book><author>x</author><title>t</title></book></bib>"
        )
        with pytest.raises(ValidationError):
            validate(document, book_grammar)

    def test_undeclared_element_rejected(self, book_grammar):
        document = parse_document("<bib><pamphlet/></bib>")
        with pytest.raises(ValidationError):
            validate(document, book_grammar)

    def test_text_in_element_only_content_rejected(self, book_grammar):
        document = parse_document("<bib>stray text</bib>")
        with pytest.raises(ValidationError):
            validate(document, book_grammar)

    def test_whitespace_in_element_content_is_ignorable(self, book_grammar):
        document = parse_document(
            "<bib>\n  <book><title>t</title><author>a</author></book>\n</bib>"
        )
        interpretation = validate(document, book_grammar)
        # Ignorable whitespace nodes get no name.
        unnamed = [node for node in document.iter() if node.node_id not in interpretation]
        assert all(isinstance(node, Text) and not node.value.strip() for node in unnamed)

    def test_strict_whitespace_mode(self, book_grammar):
        document = parse_document("<bib> <book><title>t</title><author>a</author></book></bib>")
        validator = TreeValidator(book_grammar, ignore_whitespace=False)
        with pytest.raises(ValidationError):
            validator.validate(document)

    def test_missing_required_attribute(self):
        grammar = grammar_from_text(
            "<!ELEMENT a EMPTY><!ATTLIST a id CDATA #REQUIRED>", "a"
        )
        with pytest.raises(ValidationError):
            validate(parse_document("<a/>"), grammar)
        validate(parse_document('<a id="1"/>'), grammar)

    def test_validation_error_carries_node_id(self, book_grammar):
        document = parse_document("<bib><book><author>x</author></book></bib>")
        with pytest.raises(ValidationError) as excinfo:
            validate(document, book_grammar)
        assert excinfo.value.node_id is not None


class TestEventValidation:
    def _drive(self, grammar, text):
        validator = EventValidator(grammar)
        names = []
        for event in parse_events(text):
            name = validator.feed(event)
            if name is not None:
                names.append(name)
        validator.finish()
        return names

    def test_accepts_valid_stream(self, book_grammar):
        names = self._drive(
            book_grammar,
            "<bib><book isbn='1'><title>t</title><author>a</author></book></bib>",
        )
        assert names[:3] == ["bib", "book", "title"]

    def test_rejects_bad_order(self, book_grammar):
        with pytest.raises(ValidationError):
            self._drive(book_grammar, "<bib><book><author>a</author><title>t</title></book></bib>")

    def test_rejects_premature_close(self, book_grammar):
        with pytest.raises(ValidationError):
            self._drive(book_grammar, "<bib><book><title>t</title></book></bib>")

    def test_rejects_undeclared_element(self, book_grammar):
        with pytest.raises(ValidationError):
            self._drive(book_grammar, "<bib><zine/></bib>")

    def test_rejects_wrong_root(self, book_grammar):
        with pytest.raises(ValidationError):
            self._drive(book_grammar, "<book><title>t</title><author>a</author></book>")

    def test_agrees_with_tree_validator_on_xmark(self, xmark):
        grammar, document, interpretation = xmark
        from repro.xmltree.serializer import serialize

        validator = EventValidator(grammar)
        for event in parse_events(serialize(document)):
            validator.feed(event)
        validator.finish()


# -- property: sampled documents validate; mutations fail -------------------------


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_sampled_documents_always_validate(grammar_seed, document_seed):
    grammar = random_grammar(grammar_seed)
    document = random_valid_document(grammar, document_seed)
    interpretation = validate(document, grammar)
    assert set(interpretation.names) == document.ids()
    # ℑ is the unique tag-determined interpretation (local tree grammar).
    for node in document.iter():
        if isinstance(node, Element):
            assert interpretation[node.node_id] == grammar.name_of_tag(node.tag)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_recursive_grammars_sample_and_validate(grammar_seed, document_seed):
    grammar = random_grammar(grammar_seed, allow_recursion=True)
    document = random_valid_document(grammar, document_seed, max_depth=12)
    validate(document, grammar)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_renaming_a_node_invalidates_or_changes_name(seed):
    grammar = random_grammar(seed)
    document = random_valid_document(grammar, seed)
    elements = [node for node in document.iter() if isinstance(node, Element)]
    target = elements[seed % len(elements)]
    target.tag = "zzz-undeclared"
    with pytest.raises(ValidationError):
        validate(document, grammar)
