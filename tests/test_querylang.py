"""Token-aware XPath/XQuery detection (regression: the old substring
heuristic classified any query containing " return " as XQuery)."""

import pytest

from repro.querylang import looks_like_xquery

XQUERY = [
    "for $b in /bib/book return $b/title",
    "  for $b in doc('x')//a where $b/@id return <r>{$b}</r>",
    "let $x := /a/b return $x",
    "some $x in //a satisfies $x = 1",
    "if (/a/b) then <yes/> else <no/>",
    "<wrapper>{/a/b}</wrapper>",
    'xquery version "1.0"; /a/b',
    "declare variable $x := 1; $x",
    "for $t in /site//item\nwhere $t/payment\nreturn $t",
    "$b/title return $b",          # clause after a path expression
    "//a[1] return .",             # clause after a predicate
    '"done" return 1',             # clause after a literal
]

XPATH = [
    "/bib/book/title",
    "//listitem//keyword",
    '//listitem[text()=" return me"]',      # keyword inside a string literal
    "//book[contains(., ' where ')]",
    "//return",                             # name test called "return"
    "/site/return/item",
    "//return/where",
    "child::return",                        # axis-qualified name test
    "@return",
    "//@where",
    "$input//return",                       # variable then a step
    "//well-return",                        # keyword glued inside a name
    "//a[@b='x where y']",
]


@pytest.mark.parametrize("query", XQUERY)
def test_xquery_detected(query):
    assert looks_like_xquery(query)


@pytest.mark.parametrize("query", XPATH)
def test_xpath_not_misrouted(query):
    assert not looks_like_xquery(query)


class TestEngineRouting:
    """Both routes exercised end-to-end through QueryEngine.run."""

    @pytest.fixture()
    def engine(self, book_document):
        from repro.engine.executor import QueryEngine

        return QueryEngine(book_document)

    def test_xpath_route(self, engine):
        report = engine.run('//book[author="Dante"]/title')
        assert report.result_count == 2

    def test_xpath_with_return_in_literal(self, engine):
        # The regression case: must go to the XPath evaluator (the XQuery
        # parser would reject it or, worse, silently misparse it).
        report = engine.run('//title[text()=" return me"]')
        assert report.result_count == 0

    def test_xquery_route(self, engine):
        report = engine.run('for $b in /bib/book where $b/author = "Dante" return $b/title')
        assert report.result_count == 2


class TestCliRouting:
    def test_cli_uses_same_detection(self):
        from repro.cli import _is_xquery

        assert _is_xquery("for $b in /bib return $b")
        assert not _is_xquery('//listitem[text()=" return me"]')
