"""Quantifier and order-by extension tests (beyond the FLWR core)."""

import pytest

from repro.core.pipeline import analyze
from repro.dtd.grammar import grammar_from_text
from repro.dtd.validator import validate
from repro.errors import XQuerySyntaxError
from repro.projection.tree import prune_document
from repro.xmltree.builder import parse_document
from repro.xquery.ast import OrderByExpr, QuantifiedExpr, free_variables
from repro.xquery.evaluator import XQueryEvaluator
from repro.xquery.extraction import extract_paths
from repro.xquery.parser import parse_xquery

DOC = parse_document(
    "<r>"
    "<a><b>3</b><tag>gamma</tag></a>"
    "<a><b>1</b><tag>alpha</tag></a>"
    "<a><b>2</b><tag>beta</tag></a>"
    "</r>"
)

DTD = """
<!ELEMENT r (a*)>
<!ELEMENT a (b, tag)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
"""


def run(query):
    return XQueryEvaluator(DOC).evaluate_serialized(query)


class TestQuantifiers:
    def test_parse_some(self):
        query = parse_xquery("some $x in /r/a satisfies $x/b = 2")
        assert isinstance(query, QuantifiedExpr) and not query.every

    def test_parse_every(self):
        query = parse_xquery("every $x in /r/a satisfies $x/b > 0")
        assert isinstance(query, QuantifiedExpr) and query.every

    def test_some_semantics(self):
        assert run("some $x in /r/a satisfies $x/b = 2") == "true"
        assert run("some $x in /r/a satisfies $x/b = 9") == "false"

    def test_every_semantics(self):
        assert run("every $x in /r/a satisfies $x/b > 0") == "true"
        assert run("every $x in /r/a satisfies $x/b > 1") == "false"

    def test_every_over_empty_is_true(self):
        assert run("every $x in /r/zzz satisfies $x/b = 1") == "true"
        assert run("some $x in /r/zzz satisfies $x/b = 1") == "false"

    def test_in_where_clause(self):
        result = run(
            "for $x in /r/a where some $y in $x/b satisfies $y = 1 "
            "return $x/tag/text()"
        )
        assert result == "alpha"

    def test_variable_scoping(self):
        query = parse_xquery("some $x in /r/a satisfies $x/b = $z")
        assert free_variables(query) == {"z"}

    def test_extraction_covers_condition(self):
        paths = {str(p) for p in extract_paths("some $x in /r/a satisfies $x/b = 2")}
        assert "/child::r/child::a" in paths
        assert any("child::b/descendant-or-self" in p for p in paths)

    def test_quantified_soundness(self):
        grammar = grammar_from_text(DTD, "r")
        interpretation = validate(DOC, grammar)
        query = (
            "for $x in /r/a where some $y in $x/b satisfies $y = 1 "
            "return $x/tag/text()"
        )
        result = analyze(grammar, query, language="xquery")
        pruned = prune_document(DOC, interpretation, result.projector)
        assert run(query) == XQueryEvaluator(pruned).evaluate_serialized(query)


class TestOrderBy:
    def test_parse(self):
        query = parse_xquery("for $x in /r/a order by $x/b return $x")
        assert isinstance(query, OrderByExpr)
        assert not query.descending

    def test_ascending_numeric(self):
        assert run("for $x in /r/a order by $x/b return $x/b/text()") == "1 2 3"

    def test_descending(self):
        assert run(
            "for $x in /r/a order by $x/b descending return $x/b/text()"
        ) == "3 2 1"

    def test_string_keys(self):
        assert run(
            "for $x in /r/a order by $x/tag return $x/tag/text()"
        ) == "alpha beta gamma"

    def test_with_where(self):
        assert run(
            "for $x in /r/a where $x/b > 1 order by $x/b return $x/b/text()"
        ) == "2 3"

    def test_with_let(self):
        assert run(
            "for $x in /r/a let $k := $x/b order by $k return $k/text()"
        ) == "1 2 3"

    def test_second_for_clause_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("for $x in /r/a, $y in /r/a order by $x/b return $x")

    def test_extraction_materialises_sort_key(self):
        paths = {str(p) for p in extract_paths(
            "for $x in /r/a order by $x/b return count($x)"
        )}
        assert any("child::b/descendant-or-self" in p for p in paths)

    def test_order_by_soundness(self):
        grammar = grammar_from_text(DTD, "r")
        interpretation = validate(DOC, grammar)
        query = "for $x in /r/a order by $x/b descending return $x/tag/text()"
        result = analyze(grammar, query, language="xquery")
        pruned = prune_document(DOC, interpretation, result.projector)
        assert run(query) == XQueryEvaluator(pruned).evaluate_serialized(query)

    def test_str_roundtrips(self):
        query = parse_xquery(
            "for $x in /r/a let $k := $x/b where $x/b > 1 order by $k descending return $k"
        )
        assert isinstance(parse_xquery(str(query)), OrderByExpr)
