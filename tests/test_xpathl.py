"""XPathℓ tests: Definitions 3.1–3.3 semantics and cross-checks against
the full XPath engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XPathSyntaxError, XPathTypeError
from repro.workloads.randomgen import random_grammar, random_pathl, random_valid_document
from repro.xmltree.builder import parse_document
from repro.xpath.ast import Axis, KindTest, NameTest
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.xpathl import (
    LStep,
    PathL,
    SimplePath,
    element_rooted,
    evaluate_pathl,
    parse_pathl,
    path,
    simple,
    step,
    to_xpath,
)

DOC = parse_document(
    "<bib>"
    "<book><title>T1</title><author>Dante</author></book>"
    "<book><title>T2</title><author>X</author><author>Y</author></book>"
    "</bib>"
)


def ids(nodes):
    return sorted(node.node_id for node in nodes)


class TestConstruction:
    def test_step_helper(self):
        assert step(Axis.CHILD, "book").test == NameTest("book")
        assert step(Axis.SELF, "node").test == KindTest("node")
        assert step(Axis.CHILD, "*").test == NameTest(None)
        assert step(Axis.CHILD, "text").test == KindTest("text")

    def test_forbidden_axis_rejected(self):
        with pytest.raises(XPathTypeError):
            step(Axis.FOLLOWING, "node")

    def test_nested_conditions_rejected(self):
        inner = simple(step(Axis.CHILD, "a"))
        conditioned = LStep(Axis.CHILD, NameTest("b"), (inner,))
        with pytest.raises(XPathTypeError):
            SimplePath((conditioned,))

    def test_parse_pathl_roundtrip(self):
        text = "descendant::book[child::author or child::title]/child::title"
        parsed = parse_pathl(text)
        assert parse_pathl(str(parsed)) == parsed

    def test_parse_pathl_rejects_full_xpath(self):
        with pytest.raises(XPathSyntaxError):
            parse_pathl("descendant::book[position() > 2]")


class TestSemantics:
    def test_child_descendant(self):
        result = evaluate_pathl(DOC, parse_pathl("child::book/child::title"))
        assert [n.text_value() for n in result] == ["T1", "T2"]

    def test_descendant_text(self):
        result = evaluate_pathl(DOC, parse_pathl("descendant::text()"))
        assert len(result) == 5

    def test_upward(self):
        result = evaluate_pathl(DOC, parse_pathl("descendant::author/parent::node()/child::title"))
        assert [n.text_value() for n in result] == ["T1", "T2"]

    def test_condition_filters(self):
        found = evaluate_pathl(
            DOC, parse_pathl("child::book[child::author]/child::title")
        )
        assert len(found) == 2
        none = evaluate_pathl(DOC, parse_pathl("child::book[child::price]/child::title"))
        assert none == []

    def test_disjunctive_condition(self):
        result = evaluate_pathl(
            DOC, parse_pathl("child::book[child::price or child::author]")
        )
        assert len(result) == 2

    def test_duplicate_elimination(self):
        # Both authors of book 2 share the ancestor.
        result = evaluate_pathl(DOC, parse_pathl("descendant::author/ancestor::book"))
        assert len(result) == 2

    def test_element_rooted_conversion(self):
        absolute = PathL(parse_pathl("child::bib/child::book").steps, absolute=True)
        rooted = element_rooted(absolute)
        assert rooted is not None
        assert rooted.steps[0].axis is Axis.SELF
        assert ids(evaluate_pathl(DOC, absolute)) == ids(evaluate_pathl(DOC, rooted))

    def test_element_rooted_dead_axes(self):
        absolute = PathL(parse_pathl("parent::node()").steps, absolute=True)
        assert element_rooted(absolute) is None
        assert evaluate_pathl(DOC, absolute) == []


class TestAgreementWithFullXPath:
    """[[P]] per Defs 3.1-3.3 must agree with the generic engine run on
    ``to_xpath(P)`` — two independent implementations of one semantics."""

    CASES = [
        "child::book",
        "descendant::author",
        "descendant-or-self::node()/child::title",
        "child::book[child::author/self::node()]",
        "descendant::text()",
        "descendant::author/ancestor-or-self::node()",
        "child::book[descendant::text() or child::title]/child::author",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_handwritten(self, text):
        pathl = parse_pathl(text)
        ours = ids(evaluate_pathl(DOC, pathl))
        theirs = sorted(
            node.node_id for node in XPathEvaluator(DOC).select(to_xpath(pathl), DOC.root)
        )
        assert ours == theirs

    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
    def test_random(self, grammar_seed, document_seed, path_seed):
        grammar = random_grammar(grammar_seed)
        document = random_valid_document(grammar, document_seed)
        pathl = random_pathl(grammar, path_seed)
        ours = ids(n for n in evaluate_pathl(document, pathl))
        theirs = sorted(
            node.node_id
            for node in XPathEvaluator(document).select(to_xpath(pathl), document.root)
        )
        assert ours == theirs
