"""XPath evaluator tests: axes, predicates, comparisons, document order."""

import pytest

from repro.errors import XPathTypeError
from repro.xmltree.builder import parse_document
from repro.xpath.evaluator import XPathEvaluator, evaluate, select
from repro.xpath.values import AttributeNode

SAMPLE = (
    '<r a="root">'
    "<x><y1>one</y1><y2><z>deep</z></y2><y1>two</y1></x>"
    '<x i="2"><y1>three</y1></x>'
    "</r>"
)


@pytest.fixture()
def doc():
    return parse_document(SAMPLE)


def tags(nodes):
    return [getattr(node, "tag", getattr(node, "name", "#text")) for node in nodes]


class TestAxes:
    def test_child(self, doc):
        assert tags(select(doc, "/r/x")) == ["x", "x"]

    def test_descendant_vs_descendant_or_self(self, doc):
        x = select(doc, "/r/x")[0]
        ev = XPathEvaluator(doc)
        assert len(ev.select("descendant::node()", x)) == 7
        assert len(ev.select("descendant-or-self::node()", x)) == 8

    def test_parent_and_ancestor(self, doc):
        ev = XPathEvaluator(doc)
        z = ev.select("//z")[0]
        assert tags(ev.select("parent::node()", z)) == ["y2"]
        assert tags(ev.select("ancestor::node()", z)) == ["r", "x", "y2"]
        assert tags(ev.select("ancestor-or-self::*", z)) == ["r", "x", "y2", "z"]

    def test_siblings(self, doc):
        ev = XPathEvaluator(doc)
        y2 = ev.select("//y2")[0]
        assert tags(ev.select("preceding-sibling::*", y2)) == ["y1"]
        assert tags(ev.select("following-sibling::*", y2)) == ["y1"]

    def test_following_and_preceding(self, doc):
        ev = XPathEvaluator(doc)
        z = ev.select("//z")[0]
        following = ev.select("following::*", z)
        assert tags(following) == ["y1", "x", "y1"]
        y1_last = ev.select("//x[2]/y1")[0]
        preceding = ev.select("preceding::*", y1_last)
        assert tags(preceding) == ["x", "y1", "y2", "z", "y1"]

    def test_preceding_excludes_ancestors(self, doc):
        ev = XPathEvaluator(doc)
        z = ev.select("//z")[0]
        assert "x" in tags(ev.select("preceding::*", z)) or tags(ev.select("preceding::*", z)) == ["y1"]
        assert "y2" not in tags(ev.select("preceding::*", z))

    def test_attribute_axis(self, doc):
        nodes = select(doc, "/r/@a")
        assert len(nodes) == 1 and isinstance(nodes[0], AttributeNode)
        assert nodes[0].value == "root"

    def test_self(self, doc):
        assert tags(select(doc, "/r/self::r")) == ["r"]
        assert select(doc, "/r/self::x") == []


class TestNodeTests:
    def test_text_kind(self, doc):
        values = [node.value for node in select(doc, "//y1/text()")]
        assert values == ["one", "two", "three"]

    def test_node_kind_includes_text(self, doc):
        nodes = select(doc, "//y1/child::node()")
        assert len(nodes) == 3

    def test_element_kind(self, doc):
        assert tags(select(doc, "/r/child::element()")) == ["x", "x"]

    def test_wildcard_on_attribute_axis(self, doc):
        assert [n.name for n in select(doc, "//x/@*")] == ["i"]


class TestPredicates:
    def test_positional(self, doc):
        assert select(doc, "//x[1]/y1[2]")[0].text_value() == "two"

    def test_last(self, doc):
        assert select(doc, "//x[last()]/@i")[0].value == "2"

    def test_position_on_reverse_axis_counts_backwards(self, doc):
        ev = XPathEvaluator(doc)
        z = ev.select("//z")[0]
        # ancestor::*[1] is the nearest ancestor.
        assert tags(ev.select("ancestor::*[1]", z)) == ["y2"]

    def test_boolean_predicate(self, doc):
        assert tags(select(doc, "//x[y2]")) == ["x"]
        assert tags(select(doc, "//x[@i]")) == ["x"]

    def test_chained_predicates(self, doc):
        assert tags(select(doc, "//y1[text()][position()=1]")) == ["y1", "y1"]

    def test_value_predicate(self, doc):
        assert select(doc, "//y1[. = 'two']")[0].text_value() == "two"


class TestComparisonsAndArithmetic:
    def test_general_equality_is_existential(self, doc):
        assert evaluate(doc, "//y1 = 'two'") is True
        assert evaluate(doc, "//y1 = 'nope'") is False
        assert evaluate(doc, "//y1 != 'two'") is True  # some y1 differs

    def test_numeric_comparison_with_nodeset(self, doc):
        numbers = parse_document("<a><v>1</v><v>5</v></a>")
        assert evaluate(numbers, "//v > 4") is True
        assert evaluate(numbers, "//v > 5") is False

    def test_arithmetic(self, doc):
        assert evaluate(doc, "1 + 2 * 3") == 7.0
        assert evaluate(doc, "7 mod 3") == 1.0
        assert evaluate(doc, "8 div 2") == 4.0

    def test_division_by_zero_is_infinite(self, doc):
        assert evaluate(doc, "1 div 0") == float("inf")

    def test_node_identity_and_order(self, doc):
        assert evaluate(doc, "//z is //z") is True
        assert evaluate(doc, "//x[1] << //x[2]") is True
        assert evaluate(doc, "//x[2] >> //x[1]") is True

    def test_value_comparison_on_first_item(self, doc):
        assert evaluate(doc, "//y1 eq 'one'") is True  # first in doc order

    def test_union_sorts_document_order(self, doc):
        nodes = select(doc, "//z | //y1 | /r")
        ids = [node.node_id for node in nodes]
        assert ids == sorted(ids)


class TestResultProperties:
    def test_results_in_document_order_deduplicated(self, doc):
        # ancestor-or-self from two nodes shares ancestors.
        nodes = select(doc, "//y1/ancestor-or-self::*")
        ids = [node.node_id for node in nodes]
        assert ids == sorted(set(ids))

    def test_select_ids_renders_attributes(self, doc):
        ev = XPathEvaluator(doc)
        ids = ev.select_ids("//x/@i")
        assert len(ids) == 1 and isinstance(ids[0], tuple)

    def test_variables(self, doc):
        ev = XPathEvaluator(doc, {"n": 2.0})
        assert ev.select("//x[$n]/@i")[0].value == "2"

    def test_unbound_variable_raises(self, doc):
        with pytest.raises(XPathTypeError):
            evaluate(doc, "$missing")

    def test_path_over_non_nodeset_raises(self, doc):
        with pytest.raises(XPathTypeError):
            evaluate(doc, "count(//x)/y")

    def test_nodes_touched_counter_grows(self, doc):
        ev = XPathEvaluator(doc)
        ev.select("//node()")
        assert ev.nodes_touched >= doc.size()


class TestAttributeNodeNavigation:
    def test_parent_of_attribute(self, doc):
        ev = XPathEvaluator(doc)
        assert tags(ev.select("//@i/parent::node()")) == ["x"]

    def test_ancestor_of_attribute(self, doc):
        ev = XPathEvaluator(doc)
        assert tags(ev.select("//@i/ancestor::node()")) == ["r", "x"]

    def test_string_value_of_attribute_in_function(self, doc):
        assert evaluate(doc, "string(//x/@i)") == "2"

    def test_attribute_document_order(self, doc):
        nodes = select(doc, "//@* | //x")
        # An attribute sorts after its owner and before the next element:
        # r@a, x(1), x(2), x(2)@i.
        kinds = [type(node).__name__ for node in nodes]
        assert kinds == ["AttributeNode", "Element", "Element", "AttributeNode"]
        assert nodes[2] is nodes[3].owner
