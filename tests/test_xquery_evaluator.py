"""XQuery evaluator tests."""

import pytest

from repro.errors import XQueryEvaluationError
from repro.xmltree.builder import parse_document
from repro.xquery.evaluator import (
    XQueryEvaluator,
    effective_boolean,
    evaluate_xquery,
    serialize_sequence,
)

DOC = parse_document(
    '<bib>'
    '<book year="1320"><title>Commedia</title><author>Dante</author><price>12</price></book>'
    '<book year="1851"><title>Moby</title><author>Melville</author><price>20</price></book>'
    "</bib>"
)


def run(query):
    return XQueryEvaluator(DOC).evaluate_serialized(query)


class TestBasics:
    def test_for_iterates_in_order(self):
        assert run("for $b in /bib/book return $b/title/text()") == "Commedia Moby"

    def test_where_filters(self):
        assert run(
            "for $b in /bib/book where $b/price > 15 return $b/title/text()"
        ) == "Moby"

    def test_let_binds_whole_sequence(self):
        assert run("let $b := /bib/book return count($b)") == "2"

    def test_if_else(self):
        assert run("if (/bib/book) then 'some' else 'none'") == "some"
        assert run("if (/bib/pamphlet) then 'some' else 'none'") == "none"

    def test_empty_sequence(self):
        assert run("()") == ""

    def test_sequences_concatenate(self):
        assert run("1, 'two', 3") == "1 two 3"

    def test_nested_for(self):
        result = run(
            "for $b in /bib/book for $a in $b/author return $a/text()"
        )
        assert result == "Dante Melville"

    def test_variable_shadowing(self):
        result = run(
            "for $x in /bib/book return let $x := $x/title return $x/text()"
        )
        assert result == "Commedia Moby"


class TestConstruction:
    def test_element_with_copied_content(self):
        assert run("<hit>{/bib/book[1]/title}</hit>") == "<hit><title>Commedia</title></hit>"

    def test_construction_copies_not_references(self):
        evaluator = XQueryEvaluator(DOC)
        result = evaluator.evaluate("<w>{/bib/book[1]/title}</w>")
        copied_title = result[0].children[0]
        original_title = evaluator.evaluate("/bib/book[1]/title")[0]
        assert copied_title is not original_title
        assert copied_title.text_value() == original_title.text_value()

    def test_attribute_interpolation(self):
        assert run('<b y="{/bib/book[1]/@year}"/>') == '<b y="1320"/>'

    def test_atomics_join_with_spaces(self):
        assert run("<n>{1, 2, 3}</n>") == "<n>1 2 3</n>"

    def test_mixed_literal_and_enclosed(self):
        assert run("<p>sum: {1 + 1}!</p>") == "<p>sum: 2!</p>"

    def test_attribute_node_content_becomes_text(self):
        assert run("<y>{/bib/book[1]/@year}</y>") == "<y>1320</y>"


class TestJoins:
    def test_value_join(self):
        result = run(
            "for $a in /bib/book/author "
            "let $m := for $b in /bib/book where $b/author = $a return $b "
            "return <n c='{count($m)}'>{$a/text()}</n>"
        )
        assert result == '<n c="1">Dante</n> <n c="1">Melville</n>'


class TestEffectiveBoolean:
    def test_empty_is_false(self):
        assert effective_boolean([]) is False

    def test_node_is_true(self):
        assert effective_boolean([DOC.root]) is True

    def test_singleton_atomic_coerces(self):
        assert effective_boolean([0.0]) is False
        assert effective_boolean(["x"]) is True

    def test_multi_atomic_raises(self):
        with pytest.raises(XQueryEvaluationError):
            effective_boolean([1.0, 2.0])


class TestErrorsAndMisc:
    def test_unbound_variable(self):
        from repro.errors import XPathTypeError

        with pytest.raises((XQueryEvaluationError, XPathTypeError)):
            evaluate_xquery(DOC, "$nope")

    def test_serialize_sequence_mixed(self):
        from repro.xmltree.nodes import Text

        assert serialize_sequence([Text("x"), 1.5, "s"]) == "x 1.5 s"

    def test_nodes_touched_exposed(self):
        evaluator = XQueryEvaluator(DOC)
        evaluator.evaluate("for $b in /bib/book return $b/title")
        assert evaluator.nodes_touched > 0
