"""Shared fixtures: the running-example bibliography, paper counter-example
grammars, and a small XMark document (session-scoped: generation and
validation are reused across the suite)."""

from __future__ import annotations

import pytest

from repro.dtd.grammar import grammar_from_text
from repro.dtd.validator import validate
from repro.workloads.xmark import generate_document, xmark_grammar
from repro.xmltree.builder import parse_document

BOOK_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ATTLIST book isbn CDATA #IMPLIED>
"""

BOOK_XML = (
    '<bib>'
    '<book isbn="d1"><title>Divina Commedia</title><author>Dante</author>'
    '<year>1320</year><price>12</price></book>'
    '<book isbn="m1"><title>Moby-Dick</title><author>Melville</author>'
    '<year>1851</year><price>20</price></book>'
    '<book isbn="d2"><title>Vita Nova</title><author>Dante</author><price>8</price></book>'
    '</bib>'
)


@pytest.fixture(scope="session")
def book_grammar():
    return grammar_from_text(BOOK_DTD, "bib")


@pytest.fixture()
def book_document():
    return parse_document(BOOK_XML)


@pytest.fixture()
def book_interpretation(book_grammar, book_document):
    return validate(book_document, book_grammar)


@pytest.fixture(scope="session")
def xmark():
    """(grammar, document, interpretation) for a small XMark instance."""
    grammar = xmark_grammar()
    document = generate_document(0.0015, seed=7)
    interpretation = validate(document, grammar)
    return grammar, document, interpretation
