"""Unit tests for :mod:`repro.limits` and the governed pipeline.

The fuzz battery (``test_fuzz_robustness.py``) establishes that hostile
input never escapes the structured-error contract; these tests pin down
the *specific* semantics: profile contents, which limit trips where, the
fast-path fallback (rewind, stats rollback, obs counter), and encoding
errors.
"""

from __future__ import annotations

import pytest

from repro import Limits, obs, prune
from repro.dtd.grammar import grammar_from_text
from repro.errors import (
    DeadlineExceeded,
    EncodingError,
    LimitExceeded,
    ReproError,
    ResourceError,
)
from repro.limits import (
    DEFAULT_LIMITS,
    OFF_LIMITS,
    STRICT_LIMITS,
    LimitGuard,
    resolve_limits,
)

DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title)>
<!ATTLIST book year CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
"""


@pytest.fixture(scope="module")
def bib():
    grammar = grammar_from_text(DTD, "bib")
    return grammar, frozenset({"bib", "book", "title"})


def _nested(depth: int) -> str:
    return "<bib>" + "<book>" * depth + "</book>" * depth + "</bib>"


# -- Limits configuration ------------------------------------------------------


class TestLimitsConfig:
    def test_profiles_resolve_by_name(self):
        assert Limits.profile("off") is OFF_LIMITS
        assert Limits.profile("default") is DEFAULT_LIMITS
        assert Limits.profile("strict") is STRICT_LIMITS

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown limits profile"):
            Limits.profile("paranoid")

    def test_off_is_unbounded_and_guardless(self):
        assert Limits.off().unbounded
        assert Limits.off().guard() is None

    def test_bounded_limits_produce_a_guard(self):
        assert isinstance(Limits(max_depth=4).guard(), LimitGuard)

    def test_replace_overrides_one_bound(self):
        limits = Limits.strict().replace(max_depth=3)
        assert limits.max_depth == 3
        assert limits.max_token_bytes == STRICT_LIMITS.max_token_bytes

    def test_resolve_limits(self):
        assert resolve_limits(None) is DEFAULT_LIMITS
        assert resolve_limits("strict") is STRICT_LIMITS
        custom = Limits(max_depth=7)
        assert resolve_limits(custom) is custom

    def test_error_hierarchy(self):
        assert issubclass(LimitExceeded, ResourceError)
        assert issubclass(DeadlineExceeded, ResourceError)
        assert issubclass(ResourceError, ReproError)
        error = LimitExceeded("depth", 11, 10)
        assert (error.limit, error.value, error.maximum) == ("depth", 11, 10)


# -- which limit trips where ---------------------------------------------------


class TestEnforcement:
    @pytest.mark.parametrize("fast", [True, False])
    def test_depth_limit_trips_both_paths(self, bib, fast):
        grammar, projector = bib
        with pytest.raises(LimitExceeded) as info:
            prune(_nested(60), grammar, projector, fast=fast,
                  limits=Limits(max_depth=50))
        assert info.value.limit == "depth"

    def test_depth_limit_sees_pruned_subtrees(self, bib):
        grammar, projector = bib
        # Nesting hidden inside a region the fast path bulk-skips must
        # still count toward the depth limit.
        hostile = (
            "<bib><book><title>"
            + "x" * 4
            + "</title></book>"
            + _nested(60)[5:-6]  # the deep book chain, inside the same bib
            + "</bib>"
        )
        with pytest.raises(LimitExceeded):
            prune(hostile, grammar, frozenset({"bib", "title", "book"}),
                  limits=Limits(max_depth=50))

    def test_input_limit_trips(self, bib):
        grammar, projector = bib
        doc = "<bib>" + "<book><title>t</title></book>" * 100 + "</bib>"
        with pytest.raises(LimitExceeded) as info:
            prune(doc, grammar, projector, limits=Limits(max_input_bytes=200))
        assert info.value.limit == "input_bytes"

    @pytest.mark.parametrize("fast", [True, False])
    def test_output_limit_trips_both_paths(self, bib, fast):
        grammar, projector = bib
        doc = "<bib>" + "<book><title>t</title></book>" * 1000 + "</bib>"
        with pytest.raises(LimitExceeded) as info:
            prune(doc, grammar, projector, fast=fast,
                  limits=Limits(max_output_bytes=100))
        assert info.value.limit == "output_bytes"

    def test_token_limit_trips_on_giant_text(self, bib):
        grammar, projector = bib
        doc = f"<bib><book><title>{'x' * 5000}</title></book></bib>"
        with pytest.raises(LimitExceeded) as info:
            prune(doc, grammar, projector, fast=False,
                  limits=Limits(max_token_bytes=1000))
        assert info.value.limit == "token_bytes"

    @pytest.mark.parametrize("fast", [True, False])
    def test_deadline_trips_both_paths(self, bib, fast):
        grammar, projector = bib
        doc = "<bib>" + "<book><title>t</title></book>" * 30000 + "</bib>"
        with pytest.raises(DeadlineExceeded):
            prune(doc, grammar, projector, fast=fast,
                  limits=Limits(deadline=1e-9))

    def test_deadline_trips_on_parse_document(self, bib):
        from repro.xmltree.builder import parse_document

        doc = "<bib>" + "<book><title>t</title></book>" * 30000 + "</bib>"
        with pytest.raises(DeadlineExceeded):
            parse_document(doc, limits=Limits(deadline=1e-9))

    def test_parse_document_depth_limit(self):
        from repro.xmltree.builder import parse_document

        with pytest.raises(LimitExceeded):
            parse_document(_nested(60), limits=Limits(max_depth=50))

    def test_event_source_is_governed(self, bib):
        grammar, projector = bib
        from repro.xmltree.parser import parse_events

        events = parse_events(_nested(60))
        result = prune(events, grammar, projector, limits=Limits(max_depth=50))
        with pytest.raises(LimitExceeded):
            for _ in result:
                pass

    def test_limits_off_never_trips(self, bib):
        grammar, projector = bib
        assert prune(_nested(500), grammar, projector, limits="off").text


# -- graceful degradation (fast -> events fallback) ---------------------------


class TestFallback:
    def _wide_tag_doc(self, attrs: int = 100) -> str:
        # Each attribute is small (the event parser reads them one by
        # one) but the whole tag — which the fast path's bulk scan reads
        # as ONE token — exceeds the limit.
        rendered = " ".join(f'a{i}="{"x" * 20}"' for i in range(attrs))
        return f"<bib><book {rendered}><title>t</title></book></bib>"

    def test_wide_tag_falls_back_and_matches_streaming(self, bib):
        grammar, projector = bib
        doc = self._wide_tag_doc()
        limits = Limits(max_token_bytes=500)
        with obs.capture() as sink:
            fast = prune(doc, grammar, projector, limits=limits)
        slow = prune(doc, grammar, projector, fast=False, limits=limits)
        assert fast.text == slow.text
        assert sink.counters().get("fastpath.fallbacks") == 1

    def test_fallback_false_surfaces_the_refusal(self, bib):
        grammar, projector = bib
        with pytest.raises(LimitExceeded) as info:
            prune(self._wide_tag_doc(), grammar, projector,
                  limits=Limits(max_token_bytes=500), fallback=False)
        assert info.value.limit == "token_bytes"

    def test_forced_fallback_counts_and_matches(self, bib):
        grammar, projector = bib
        doc = "<bib><book year='1'><title>t</title></book></bib>"
        with obs.capture() as sink:
            forced = prune(doc, grammar, projector, fallback="force")
        assert forced.text == prune(doc, grammar, projector).text
        assert sink.counters().get("fastpath.fallbacks") == 1

    def test_fallback_mid_stream_rewinds_file_source(self, bib, tmp_path):
        grammar, projector = bib
        # Put the wide tag deep into the document so the fast path has
        # consumed plenty of input before tripping.
        doc = ("<bib>" + "<book><title>t</title></book>" * 200
               + self._wide_tag_doc()[5:-6] + "</bib>")
        path = tmp_path / "doc.xml"
        path.write_text(doc, encoding="utf-8")
        limits = Limits(max_token_bytes=500)
        out = tmp_path / "out.xml"
        result = prune(str(path), grammar, projector, out=str(out), limits=limits)
        slow = prune(doc, grammar, projector, fast=False, limits=limits)
        assert out.read_text(encoding="utf-8") == slow.text
        assert result.stats.elements_out == slow.stats.elements_out

    def test_fallback_rolls_back_stats(self, bib):
        grammar, projector = bib
        doc = self._wide_tag_doc()
        limits = Limits(max_token_bytes=500)
        fast = prune(doc, grammar, projector, limits=limits).stats
        slow = prune(doc, grammar, projector, fast=False, limits=limits).stats
        assert fast.elements_in == slow.elements_in
        assert fast.attributes_in == slow.attributes_in
        assert fast.bytes_out == slow.bytes_out

    def test_fallback_does_not_extend_the_deadline(self, bib):
        grammar, projector = bib
        guard = Limits(deadline=30.0).guard()
        before = guard.deadline_at
        guard.add_input(100)
        guard.rewind()
        assert guard.deadline_at == before  # rewind keeps the clock running
        assert guard._input == 0


# -- encoding hostility --------------------------------------------------------


class TestEncoding:
    def test_undecodable_file_raises_encoding_error(self, bib, tmp_path):
        grammar, projector = bib
        path = tmp_path / "bad.xml"
        path.write_bytes(b"<bib><book><title>\xff\xfe\x9c</title></book></bib>")
        with pytest.raises(EncodingError):
            prune(str(path), grammar, projector)

    def test_encoding_error_is_a_repro_error(self):
        assert issubclass(EncodingError, ReproError)

    def test_partial_output_removed_on_limit_refusal(self, bib, tmp_path):
        grammar, projector = bib
        doc = "<bib>" + "<book><title>t</title></book>" * 2000 + "</bib>"
        out = tmp_path / "out.xml"
        with pytest.raises(LimitExceeded):
            prune(doc, grammar, projector, out=str(out),
                  limits=Limits(max_output_bytes=100))
        assert not out.exists()
