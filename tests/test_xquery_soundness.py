"""End-to-end XQuery soundness: every workload query answers identically
on the original and the type-pruned document (Theorem 4.5 through the
whole Section 5 pipeline)."""

import pytest

from repro.core.pipeline import analyze
from repro.projection.tree import prune_document
from repro.workloads.xmark import TABLE1_XMARK, XMARK_QUERIES
from repro.workloads.xpathmark import XPATHMARK_QUERIES
from repro.xpath.evaluator import XPathEvaluator
from repro.xquery.evaluator import XQueryEvaluator


@pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
def test_xmark_query_soundness(xmark, name):
    grammar, document, interpretation = xmark
    query = XMARK_QUERIES[name]
    result = analyze(grammar, query, language="xquery")
    pruned = prune_document(document, interpretation, result.projector)
    original = XQueryEvaluator(document).evaluate_serialized(query)
    after = XQueryEvaluator(pruned).evaluate_serialized(query)
    assert original == after


@pytest.mark.parametrize("name", sorted(XPATHMARK_QUERIES))
def test_xpathmark_query_soundness(xmark, name):
    grammar, document, interpretation = xmark
    query = XPATHMARK_QUERIES[name]
    result = analyze(grammar, [query])
    pruned = prune_document(document, interpretation, result.projector)
    original = XPathEvaluator(document).select_ids(query)
    after = XPathEvaluator(pruned).select_ids(query)
    assert original == after


def test_union_projector_serves_the_whole_bunch(xmark):
    """Bunch-of-queries (Section 5): one pruned document answers all."""
    grammar, document, interpretation = xmark
    queries = [XMARK_QUERIES[name] for name in TABLE1_XMARK]
    result = analyze(grammar, queries, language="xquery")
    pruned = prune_document(document, interpretation, result.projector)
    for name, query in zip(TABLE1_XMARK, queries):
        assert (
            XQueryEvaluator(document).evaluate_serialized(query)
            == XQueryEvaluator(pruned).evaluate_serialized(query)
        ), name


def test_union_is_union_of_per_query_projectors(xmark):
    grammar, _, _ = xmark
    queries = [XMARK_QUERIES[name] for name in ("QM01", "QM05")]
    result = analyze(grammar, queries, language="xquery")
    assert result.projector == frozenset().union(*result.per_query)


def test_analysis_time_is_negligible(xmark):
    """The paper: 'the time of the static analysis is always negligible
    (lower than half a second) even for complex queries and DTDs'."""
    grammar, _, _ = xmark
    for name in TABLE1_XMARK:
        result = analyze(grammar, XMARK_QUERIES[name], language="xquery")
        assert result.analysis_seconds < 0.5, name


def test_selective_queries_prune_hard(xmark):
    """Sanity on pruning power: QM01 (one person's name) keeps only a few
    names; QM14 (description search) keeps the mixed-content fabric."""
    grammar, document, interpretation = xmark
    small = analyze(grammar, XMARK_QUERIES["QM01"], language="xquery")
    big = analyze(grammar, XMARK_QUERIES["QM14"], language="xquery")
    pruned_small = prune_document(document, interpretation, small.projector)
    pruned_big = prune_document(document, interpretation, big.projector)
    assert pruned_small.size() < 0.10 * document.size()
    assert pruned_big.size() > 2 * pruned_small.size()
    assert "description" in {node.tag for node in pruned_big.elements()}
