"""Fused fast path vs event pipeline: byte-identical output, identical
stats, identical event streams, identical errors — across chunk
boundaries, misc nodes, CDATA, entities, deep nesting, and single-type
grammars."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.grammar import text_name
from repro.dtd.regex import Atom, Seq, Star
from repro.dtd.singletype import single_type_grammar
from repro.errors import ValidationError, XMLSyntaxError
from repro.projection.fastpath import FastPruner
from repro.projection.stats import PruneStats
from repro.api import prune
from repro.workloads.randomgen import random_grammar, random_valid_document
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import serialize
from tests.conftest import BOOK_XML

_COUNTERS = (
    "elements_in", "elements_out", "attributes_in", "attributes_out",
    "texts_in", "texts_out", "distinct_tags_in", "distinct_tags_out",
)


def _statdict(stats: PruneStats) -> dict:
    return {name: getattr(stats, name) for name in _COUNTERS}


def _both(grammar, xml, projector, chunk_size=1 << 16):
    fast_sink, slow_sink = io.StringIO(), io.StringIO()
    fast_stats = prune(
        io.StringIO(xml), grammar, projector, out=fast_sink,
        fast=True, chunk_size=chunk_size,
    ).stats
    slow_stats = prune(
        io.StringIO(xml), grammar, projector, out=slow_sink,
        fast=False, chunk_size=chunk_size,
    ).stats
    return fast_sink.getvalue(), fast_stats, slow_sink.getvalue(), slow_stats


def assert_paths_agree(grammar, xml, projector, chunk_size=1 << 16):
    fast, fast_stats, slow, slow_stats = _both(grammar, xml, projector, chunk_size)
    assert fast == slow
    assert _statdict(fast_stats) == _statdict(slow_stats)
    assert fast_stats.bytes_out == slow_stats.bytes_out == len(fast)
    return fast


MISC_XML = (
    '<?xml version="1.0"?>\n'
    "<!-- preamble -->\n"
    "<bib><!-- kept region -->"
    '<book isbn="a&amp;b"><title>T&#65;!</title><author>A &lt; B</author>'
    "<!-- inside kept book --><?render fast?></book>"
    '<book isbn="x"><title><![CDATA[]]></title><author>plain</author>'
    "<year>2001</year><price>9</price></book>"
    "</bib>\n<?trailer pi?><!-- done -->"
)


class TestByteParity:
    def test_selective_projector(self, book_grammar):
        projector = book_grammar.projector_closure(["title", text_name("title")])
        pruned = assert_paths_agree(book_grammar, BOOK_XML, projector)
        assert "<title>Divina Commedia</title>" in pruned
        assert "author" not in pruned

    def test_identity_projector(self, book_grammar):
        projector = frozenset(book_grammar.productions)
        assert_paths_agree(book_grammar, BOOK_XML, projector)

    def test_root_only_projector(self, book_grammar):
        assert_paths_agree(book_grammar, BOOK_XML, frozenset({"bib"}))

    def test_misc_cdata_entities(self, book_grammar):
        for names in (["title", text_name("title")],
                      ["title", text_name("title"), "author", text_name("author")],
                      ["bib"]):
            projector = book_grammar.projector_closure(names)
            assert_paths_agree(book_grammar, MISC_XML, projector)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64])
    def test_chunk_boundaries(self, book_grammar, chunk_size):
        """Markup, comments, CDATA and entity references straddling every
        possible chunk edge must not change the output."""
        projector = book_grammar.projector_closure(["title", text_name("title")])
        assert_paths_agree(book_grammar, MISC_XML, projector, chunk_size=chunk_size)

    def test_empty_cdata_blocks_empty_element_collapse(self, book_grammar):
        # Characters("") still separates <title> from </title> in the
        # event serializer; the fast path must reproduce that.
        xml = "<bib><book><title><![CDATA[]]></title><author>a</author></book></bib>"
        projector = book_grammar.projector_closure(["title", text_name("title")])
        pruned = assert_paths_agree(book_grammar, xml, projector)
        assert "<title></title>" in pruned

    def test_deep_nesting(self):
        grammar = single_type_grammar("Doc", {
            "Doc": ("a", Star(Atom("Inner"))),
            "Inner": ("a", Star(Atom("Inner"))),
        })
        depth = 2000
        xml = "<a>" * depth + "</a>" * depth
        assert_paths_agree(grammar, xml, frozenset({"Doc", "Inner"}))

    def test_xmark_document(self, xmark):
        from repro.core.pipeline import analyze

        grammar, document, _ = xmark
        xml = serialize(document)
        projector = analyze(grammar, ["//person/name"]).projector
        assert_paths_agree(grammar, xml, projector)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000),
        st.sampled_from([3, 17, 1 << 16]),
    )
    def test_random_documents(self, grammar_seed, document_seed, selection_seed, chunk_size):
        import random

        grammar = random_grammar(grammar_seed)
        document = random_valid_document(grammar, document_seed)
        rng = random.Random(selection_seed)
        projector = grammar.projector_closure(
            [name for name in sorted(grammar.reachable_names()) if rng.random() < 0.4]
            or [grammar.root]
        ) | {grammar.root}
        assert_paths_agree(grammar, serialize(document), projector, chunk_size=chunk_size)


class TestEventParity:
    def _streams(self, grammar, xml, projector, chunk_size=1 << 16):
        fast = list(FastPruner(grammar, projector).events(io.StringIO(xml), chunk_size))
        slow = list(prune(parse_events(xml), grammar, projector).events)
        return fast, slow

    def test_event_streams_identical(self, book_grammar):
        projector = book_grammar.projector_closure(["title", text_name("title")])
        fast, slow = self._streams(book_grammar, MISC_XML, projector)
        assert fast == slow

    @pytest.mark.parametrize("chunk_size", [1, 5, 1 << 16])
    def test_event_streams_identical_across_chunks(self, book_grammar, chunk_size):
        projector = frozenset(book_grammar.productions)
        fast, slow = self._streams(book_grammar, MISC_XML, projector, chunk_size)
        assert fast == slow

    def test_events_feed_tree_loader(self, book_grammar):
        from repro.engine.loader import load_pruned

        projector = book_grammar.projector_closure(["author", text_name("author")])
        fast = load_pruned(io.StringIO(BOOK_XML), book_grammar, projector, fast=True)
        slow = load_pruned(io.StringIO(BOOK_XML), book_grammar, projector, fast=False)
        assert serialize(fast.document) == serialize(slow.document)
        assert fast.nodes_built == slow.nodes_built
        assert _statdict(fast.prune_stats) == _statdict(slow.prune_stats)


class TestErrorParity:
    BAD_DOCS = [
        "<bib><book><title>t</title></book>",                        # unclosed root
        "<bib><book><title>t</author></book></bib>",                 # mismatched close
        "<bib><book><title>&nope;</title></book></bib>",             # unknown entity
        "<bib><book><title>t<!-- -- --></title></book></bib>",       # -- in comment
        '<bib><book isbn="a" isbn="b"><title>t</title></book></bib>',  # dup attribute
        "<bib></bib><bib></bib>",                                    # two roots
        "<bib></bib>stray",                                          # text after root
        "<bib><book><title><![CDATA[x</title></book></bib>",         # unterminated CDATA
    ]

    @pytest.mark.parametrize("xml", BAD_DOCS)
    def test_syntax_errors_on_both_paths(self, book_grammar, xml):
        # Keep only the root so every error above sits in a *pruned*
        # region for the fast path — it must still be detected.
        projector = frozenset({"bib"})
        with pytest.raises(XMLSyntaxError):
            prune(xml, book_grammar, projector, fast=True)
        with pytest.raises(XMLSyntaxError):
            prune(xml, book_grammar, projector, fast=False)

    def test_undeclared_element(self, book_grammar):
        xml = "<bib><mystery/></bib>"
        for fast in (True, False):
            with pytest.raises(ValidationError, match="mystery"):
                prune(xml, book_grammar, frozenset({"bib"}), fast=fast)


class TestSingleTypeGrammars:
    def _grammar(self):
        # Both shelves hold <item> elements, but under different names —
        # a local-element setup a DTD cannot express.
        return single_type_grammar("Root", {
            "Root": ("library", Seq([Atom("Books"), Atom("Films")])),
            "Books": ("books", Star(Atom("Book"))),
            "Films": ("films", Star(Atom("Film"))),
            "Book": ("item", Seq([Atom("BTitle")])),
            "Film": ("item", Seq([Atom("FTitle")])),
            "BTitle": ("title", Atom("BText")),
            "FTitle": ("title", Atom("FText")),
            "BText": None,
            "FText": None,
        })

    XML = ("<library><books><item><title>b</title></item></books>"
           "<films><item><title>f</title></item></films></library>")

    def test_local_elements_resolved_by_parent(self):
        grammar = self._grammar()
        # Impossible to express with tags alone: keep <item> under the
        # Book interpretation only — resolution must use the parent's
        # name, not the tag.
        projector = frozenset({"Root", "Books", "Films", "Book", "BTitle", "BText"})
        pruned = assert_paths_agree(grammar, self.XML, projector)
        assert pruned == ("<library><books><item><title>b</title></item></books>"
                          "<films/></library>")

    @pytest.mark.parametrize("chunk_size", [1, 4, 1 << 16])
    def test_parity_across_chunks(self, chunk_size):
        grammar = self._grammar()
        xml = ("<library><books><item><title>a&amp;b</title></item></books>"
               "<films><item><title><![CDATA[f]]></title></item></films></library>")
        projector = frozenset({"Root", "Books", "Films", "Film", "FTitle", "FText"})
        assert_paths_agree(grammar, xml, projector, chunk_size=chunk_size)
