"""Property-based differential harness over random (DTD, document, query)
triples.

Two families of invariants, checked per random case:

* **pruner agreement** — the fused fast path, the streaming event
  pipeline, and the in-memory tree pruner produce byte-identical markup
  for the same (document, projector);
* **soundness** (the paper's Theorem 4.5) — a query evaluated on the
  pruned document selects exactly the same nodes as on the original.
  The tree pruner preserves ``node_id``\\ s, so the comparison is by
  identity, not by value.

The default run covers ``QUICK_CASES`` seeds and rides in the normal
suite; the full 200-seed sweep is marked ``slow``::

    PYTHONPATH=src python -m pytest tests/test_differential.py -m slow

Seeds are fixed, so failures reproduce exactly; every third seed enables
recursive grammars (the hard case for projector closure).
"""

from __future__ import annotations

import pytest

from repro import Limits, extract, obs, prune
from repro.core.pipeline import analyze
from repro.core.projector import infer_projector
from repro.dtd.validator import validate
from repro.extract.reference import extract_document
from repro.projection.tree import prune_document
from repro.workloads.randomgen import (
    random_extract_spec,
    random_grammar,
    random_pathl,
    random_valid_document,
)
from repro.xmltree.builder import parse_document
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import serialize
from repro.xpath.xpathl import evaluate_pathl

QUICK_CASES = 25
FULL_CASES = 200


def _case(seed: int):
    """One deterministic (grammar, document, query, projector) quadruple."""
    grammar = random_grammar(seed, allow_recursion=(seed % 3 == 0))
    document = random_valid_document(grammar, seed * 31 + 7)
    pathl = random_pathl(grammar, seed * 13 + 5)
    projector = frozenset(infer_projector(grammar, pathl)) | {grammar.root}
    return grammar, document, pathl, projector


def _node_ids(nodes) -> set:
    return {getattr(node, "node_id", "-root-") for node in nodes}


def check_one(seed: int) -> None:
    grammar, document, pathl, projector = _case(seed)
    markup = serialize(document)

    # -- pruner agreement: fast == streaming == tree, byte for byte ------
    fast = prune(markup, grammar, projector, fast=True).text
    slow = prune(markup, grammar, projector, fast=False).text
    assert fast == slow, f"seed {seed}: fast path diverged from event pipeline"

    # -- limits axis: the governed paths change nothing ------------------
    # Forced fallback exercises the degradation path end to end: it must
    # be byte-identical to the fast path it degrades from.
    forced = prune(markup, grammar, projector, fast=True, fallback="force").text
    assert forced == fast, f"seed {seed}: forced fallback diverged from fast path"
    # Limits(off) must be bit-for-bit the pre-limits pipeline.
    off = prune(markup, grammar, projector, limits=Limits.off()).text
    assert off == fast, f"seed {seed}: Limits.off() changed the output"
    # The strict profile only refuses, never alters: when it accepts the
    # document the output is identical.
    strict = prune(
        markup, grammar, projector, limits=Limits.strict().replace(deadline=None)
    ).text
    assert strict == fast, f"seed {seed}: strict limits changed the output"

    interpretation = validate(document, grammar)
    tree_pruned = prune_document(document, interpretation, projector)
    assert serialize(tree_pruned) == fast, (
        f"seed {seed}: tree pruner diverged from streaming pruners"
    )

    # -- soundness: Q(prune(D)) == Q(D), compared by node identity -------
    expected = _node_ids(evaluate_pathl(document, pathl))
    actual = _node_ids(evaluate_pathl(tree_pruned, pathl))
    assert actual == expected, (
        f"seed {seed}: query answer changed under pruning "
        f"(missing {expected - actual}, extra {actual - expected})"
    )


def check_extract(seed: int) -> None:
    """The extraction analogue of :func:`check_one`: the fused scan, the
    forced event pipeline, the event-iterable source, and the tree-walk
    reference oracle must all agree record for record."""
    grammar = random_grammar(seed, allow_recursion=(seed % 3 == 0))
    document = random_valid_document(grammar, seed * 31 + 7)
    spec = random_extract_spec(grammar, seed * 17 + 3)
    markup = serialize(document)

    fused = extract(markup, grammar, spec)
    forced = extract(markup, grammar, spec, fallback="force")
    assert fused.text == forced.text, (
        f"seed {seed}: fused extraction diverged from the event pipeline"
    )
    assert fused.records == forced.records, f"seed {seed}: records diverged"

    via_events = extract(parse_events(markup), grammar, spec)
    assert via_events.records == fused.records, (
        f"seed {seed}: event-source extraction diverged"
    )

    # -- oracle agreement: extraction never misses what pruning kept ----
    # The reference walks the full unpruned tree; equal records prove the
    # spec's inferred projector discarded nothing the workload needed.
    null = spec.null
    expected = [
        {name: (value if value is not None else null) for name, value in row.items()}
        for row in extract_document(parse_document(markup, strip_whitespace=False), spec)
    ]
    assert fused.records == expected, (
        f"seed {seed}: fused records diverged from the tree-walk reference"
    )

    # -- format axis: CSV carries the same rows as JSONL ----------------
    as_csv = extract(markup, grammar, spec, format="csv")
    assert as_csv.stats.rows_out == fused.stats.rows_out == len(expected), (
        f"seed {seed}: CSV and JSONL row counts diverged"
    )

    # -- limits axis: Limits.off() changes nothing ----------------------
    off = extract(markup, grammar, spec, limits=Limits.off())
    assert off.text == fused.text, f"seed {seed}: Limits.off() changed the output"


def check_static(seed: int) -> None:
    """The static-pre-pass axis: analysis with the satisfiability pre-pass
    enabled vs disabled must prune to byte-identical output — the
    pre-pass may only ever remove *work*, never *bytes*."""
    grammar, document, pathl, _ = _case(seed)
    markup = serialize(document)
    query = str(pathl)

    with_prepass = analyze(grammar, query, static=True)
    without_prepass = analyze(grammar, query, static=False)
    baseline = prune(markup, grammar, without_prepass.projector).text
    filtered = prune(markup, grammar, with_prepass.projector).text
    assert filtered == baseline, (
        f"seed {seed}: the occurrence filter changed the pruned bytes"
    )

    # Passing the analysis itself arms the provably-empty short-circuit;
    # whether or not it fires, the bytes must not move.
    shortcut = prune(markup, grammar, with_prepass).text
    assert shortcut == baseline, (
        f"seed {seed}: the UNSAT short-circuit changed the pruned bytes"
    )

    # Verdict soundness on this concrete case: an UNSAT verdict means the
    # query selects nothing in any valid document, this one included.
    verdict = with_prepass.verdicts[0]
    if not verdict.satisfiable:
        assert evaluate_pathl(document, pathl) == [], (
            f"seed {seed}: UNSAT verdict but the query selected nodes"
        )


def _paired_schema(seed: int) -> tuple[str, str, str]:
    """One random schema, spelled twice: as a DTD and as the equivalent
    Garden-of-Eden XSD.  Returns ``(dtd_text, xsd_text, root)``.

    The shape is deliberately restricted to the intersection of the two
    formalisms — global elements, sequences and binary choices with
    ``?``/``*``/``+`` occurrence, ``#PCDATA`` leaves, ``CDATA``
    attributes — so byte parity of the compiled grammars is a theorem,
    not a coincidence.  A chain ref from each element to the next keeps
    every declaration reachable from the root.
    """
    import random

    rng = random.Random(seed * 1009 + 17)
    count = rng.randint(3, 6)
    names = [f"n{index}" for index in range(count)]
    leaf_cut = max(1, count - 2)

    occ_xsd = {
        "": "",
        "?": ' minOccurs="0"',
        "*": ' minOccurs="0" maxOccurs="unbounded"',
        "+": ' maxOccurs="unbounded"',
    }
    models: dict[str, list] = {}
    referenced: set[str] = set()
    for index, name in enumerate(names[:leaf_cut]):
        pool = names[index + 1:]
        items = [("ref", names[index + 1], rng.choice(["", "?", "*", "+"]))]
        for _ in range(rng.randint(0, 2)):
            occ = rng.choice(["", "?", "*", "+"])
            if len(pool) >= 2 and rng.random() < 0.3:
                items.append(("choice", rng.sample(pool, 2), occ))
            else:
                items.append(("ref", rng.choice(pool), occ))
        models[name] = items
        for kind, target, _ in items:
            referenced.update([target] if kind == "ref" else target)
    # The XSD compiler only emits declarations reachable from the root,
    # so orphaned names would break parity with the keep-everything DTD
    # loader: hang them off the root as optional trailing children.
    for name in names[1:]:
        if name not in referenced:
            models[names[0]].append(("ref", name, "?"))

    dtd_lines, xsd_parts = [], []
    for index, name in enumerate(names):
        if index >= leaf_cut:
            dtd_lines.append(f"<!ELEMENT {name} (#PCDATA)>")
            xsd_parts.append(f'<xs:element name="{name}" type="xs:string"/>')
            continue
        items = models[name]
        dtd_items, xsd_items = [], []
        for kind, target, occ in items:
            if kind == "ref":
                dtd_items.append(f"{target}{occ}")
                xsd_items.append(f'<xs:element ref="{target}"{occ_xsd[occ]}/>')
            else:
                dtd_items.append(f"({target[0]} | {target[1]}){occ}")
                xsd_items.append(
                    f"<xs:choice{occ_xsd[occ]}>"
                    f'<xs:element ref="{target[0]}"/>'
                    f'<xs:element ref="{target[1]}"/>'
                    "</xs:choice>"
                )
        dtd_lines.append(f"<!ELEMENT {name} ({', '.join(dtd_items)})>")
        attribute = ""
        if rng.random() < 0.4:
            # Implied only: random_valid_document never emits attributes,
            # so a required one would make every document invalid.
            dtd_lines.append(f"<!ATTLIST {name} id CDATA #IMPLIED>")
            attribute = '<xs:attribute name="id" type="xs:string"/>'
        xsd_parts.append(
            f'<xs:element name="{name}"><xs:complexType><xs:sequence>'
            f'{"".join(xsd_items)}</xs:sequence>{attribute}'
            "</xs:complexType></xs:element>"
        )
    dtd_text = "\n".join(dtd_lines)
    xsd_text = (
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
        + "".join(xsd_parts)
        + "</xs:schema>"
    )
    return dtd_text, xsd_text, names[0]


def check_schema(seed: int) -> None:
    """The schema-front-end axis: the XSD spelling of a random grammar is
    byte-equivalent to its DTD spelling across every pruning path, and
    the dataguide inferred from its documents is order-independent and
    routes strays to the escape hatch, never to wrong bytes."""
    from repro.core.cache import grammar_fingerprint, resolve_projector
    from repro.dtd.grammar import grammar_from_text
    from repro.errors import StrayDocumentError
    from repro.schema import grammar_from_xsd, infer_grammar

    dtd_text, xsd_text, root = _paired_schema(seed)
    dtd_grammar = grammar_from_text(dtd_text, root)
    xsd_grammar = grammar_from_xsd(xsd_text, root)
    assert grammar_fingerprint(xsd_grammar) == grammar_fingerprint(dtd_grammar), (
        f"seed {seed}: XSD and DTD spellings compiled to different grammars"
    )

    document = random_valid_document(dtd_grammar, seed * 31 + 7)
    markup = serialize(document)
    pathl = random_pathl(dtd_grammar, seed * 13 + 5)
    projector = frozenset(infer_projector(xsd_grammar, pathl)) | {root}

    fast = prune(markup, xsd_grammar, projector, fast=True).text
    slow = prune(markup, xsd_grammar, projector, fast=False).text
    via_dtd = prune(markup, dtd_grammar, projector).text
    assert fast == slow == via_dtd, (
        f"seed {seed}: XSD-compiled grammar pruned differently from the DTD"
    )
    interpretation = validate(document, xsd_grammar)
    assert serialize(prune_document(document, interpretation, projector)) == fast, (
        f"seed {seed}: tree pruning under the XSD grammar diverged"
    )

    # -- the dataguide axis ---------------------------------------------
    second = serialize(random_valid_document(dtd_grammar, seed * 97 + 11))
    inferred = infer_grammar([markup, second])
    flipped = infer_grammar([second, markup])
    assert grammar_fingerprint(inferred) == grammar_fingerprint(flipped), (
        f"seed {seed}: dataguide fingerprint depends on ingestion order"
    )
    inferred_projector = resolve_projector(inferred, [str(pathl)])
    assert not prune(markup, inferred, inferred_projector).stray, (
        f"seed {seed}: a sample document strayed from its own dataguide"
    )
    stray_doc = f"<{inferred.root}><zzzstray/></{inferred.root}>"
    with pytest.raises(StrayDocumentError):
        prune(stray_doc, inferred, inferred_projector)
    lax = infer_grammar([markup, second], on_stray="copy")
    copied = prune(stray_doc, lax, resolve_projector(lax, [str(pathl)]))
    assert copied.stray and copied.text == stray_doc, (
        f"seed {seed}: the copy policy did not pass the stray through verbatim"
    )


@pytest.mark.parametrize("seed", range(QUICK_CASES))
def test_differential_quick(seed):
    check_one(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(QUICK_CASES, FULL_CASES))
def test_differential_full(seed):
    check_one(seed)


@pytest.mark.parametrize("seed", range(QUICK_CASES))
def test_differential_extract_quick(seed):
    check_extract(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(QUICK_CASES, FULL_CASES))
def test_differential_extract_full(seed):
    check_extract(seed)


@pytest.mark.parametrize("seed", range(QUICK_CASES))
def test_differential_static_quick(seed):
    check_static(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(QUICK_CASES, FULL_CASES))
def test_differential_static_full(seed):
    check_static(seed)


@pytest.mark.parametrize("seed", range(QUICK_CASES))
def test_differential_schema_quick(seed):
    check_schema(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(QUICK_CASES, FULL_CASES))
def test_differential_schema_full(seed):
    check_schema(seed)


def _run_ledger_axis(seeds, tmp_path):
    """The ledger axis: every seeded prune/extract run is recorded into
    one shared attestation ledger, dedup hits return *identical* bytes,
    records and stats to the fresh run, and a full replay re-attests
    every entry (Thm 4.5 byte-identity, promoted to a runtime contract).
    Returns what the corruption test needs to poke at the recorded state.
    """
    from repro.ledger import Ledger, replay_ledger

    led_path = str(tmp_path / "ledger.jsonl")
    grammars = []
    expected_entries = 0
    with Ledger(led_path) as ledger:
        for seed in seeds:
            grammar, document, _, projector = _case(seed)
            grammars.append(grammar)
            doc_path = str(tmp_path / f"doc-{seed}.xml")
            with open(doc_path, "w", encoding="utf-8") as handle:
                handle.write(serialize(document))

            fresh = prune(doc_path, grammar, projector)
            recorded = prune(doc_path, grammar, projector, ledger=ledger)
            expected_entries += 1
            hits_before = ledger.hits
            served = prune(doc_path, grammar, projector, ledger=ledger)
            assert ledger.hits == hits_before + 1, (
                f"seed {seed}: identical re-prune was not dedup-served"
            )
            assert served.text == recorded.text == fresh.text, (
                f"seed {seed}: dedup hit returned different bytes"
            )
            assert served.stats == recorded.stats == fresh.stats, (
                f"seed {seed}: dedup hit returned different stats"
            )

            spec = random_extract_spec(grammar, seed * 17 + 3)
            efresh = extract(doc_path, grammar, spec)
            appended_before = ledger.appended
            erecorded = extract(doc_path, grammar, spec, ledger=ledger)
            if ledger.appended == appended_before:
                # Statically short-circuited: nothing scanned, nothing to
                # attest — the result must still match the fresh run.
                assert erecorded.text == efresh.text
                continue
            expected_entries += 1
            hits_before = ledger.hits
            eserved = extract(doc_path, grammar, spec, ledger=ledger)
            assert ledger.hits == hits_before + 1, (
                f"seed {seed}: identical re-extract was not dedup-served"
            )
            assert eserved.text == erecorded.text == efresh.text, (
                f"seed {seed}: extract dedup hit returned different bytes"
            )
            assert eserved.records == erecorded.records == efresh.records, (
                f"seed {seed}: extract dedup hit returned different records"
            )
            assert eserved.stats == erecorded.stats == efresh.stats, (
                f"seed {seed}: extract dedup hit returned different stats"
            )

        assert len(ledger) == ledger.appended == expected_entries
        report = replay_ledger(ledger, grammars=grammars, jobs=2)
    assert report.total == expected_entries
    assert report.ok and report.attested == report.total, (
        f"replay did not attest 100%: {report.as_dict()}"
    )
    return led_path, grammars


def test_differential_ledger_quick(tmp_path):
    _run_ledger_axis(range(QUICK_CASES), tmp_path)


@pytest.mark.slow
def test_differential_ledger_full(tmp_path):
    _run_ledger_axis(range(QUICK_CASES, FULL_CASES), tmp_path)


def test_differential_ledger_detects_corruption(tmp_path):
    """Flip one byte of one recorded output: replay must report exactly
    that entry as divergent and every other entry as attested."""
    import json
    import os

    from repro.ledger import Ledger, replay_ledger

    led_path, grammars = _run_ledger_axis(range(4), tmp_path)
    with Ledger(led_path, fsync=False) as ledger:
        victim = ledger.entries[1]
        blob_path = os.path.join(
            led_path + ".store", victim.output_hash + ".json"
        )
        with open(blob_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        text = payload["text"]
        flipped = chr(ord(text[-1]) ^ 1)
        payload["text"] = text[:-1] + flipped
        with open(blob_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

        report = replay_ledger(ledger, grammars=grammars, jobs=2)
    assert not report.ok
    assert [item.seq for item in report.divergent] == [victim.seq]
    assert report.attested == report.total - 1
    assert "stored result" in report.divergent[0].reason


def test_projector_is_valid_projector():
    """The inferred-and-rooted set used by every case really is a
    projector (closed under the grammar's chain relation)."""
    for seed in range(QUICK_CASES):
        grammar, _, _, projector = _case(seed)
        assert grammar.check_projector(projector) == projector


def test_differential_harness_traces_cleanly():
    """The harness runs identically under a live tracer (guards against
    obs-only code paths diverging)."""
    with obs.capture() as sink:
        check_one(1)
    assert sink.spans("prune")
