"""Figure 3 path-extraction tests."""

import pytest

from repro.errors import AnalysisError
from repro.xquery.extraction import extract_paths
from repro.xquery.parser import parse_xquery


def paths_of(query):
    return {str(path) for path in extract_paths(query)}


class TestFigure3Rules:
    def test_empty_sequence_extracts_nothing(self):
        assert paths_of("()") == set()

    def test_bare_path_is_materialised(self):
        # Line 8: E(P, Γ, 1) = {/P/descendant-or-self::node}.
        assert paths_of("/a/b") == {"/child::a/child::b/descendant-or-self::node()"}

    def test_for_source_is_not_materialised(self):
        # Line 16: E(q1, Γ, 0) — the binding sequence itself is not output.
        result = paths_of("for $x in /a/b return count($x)")
        assert "/child::a/child::b" in result
        assert "/child::a/child::b/descendant-or-self::node()" not in result

    def test_variable_result_is_materialised(self):
        # Line 6: returning $x materialises its paths.
        result = paths_of("for $x in /a/b return $x")
        assert "/child::a/child::b/descendant-or-self::node()" in result

    def test_variable_path_composition(self):
        # Line 10: E(x/P, Γ, 1) = Γ(x)/P/dos.
        result = paths_of("for $x in /a return $x/b")
        assert "/child::a/child::b/descendant-or-self::node()" in result

    def test_let_paths_only_when_used(self):
        used = paths_of("let $k := /a/b return <r>{$k}</r>")
        assert "/child::a/child::b/descendant-or-self::node()" in used

    def test_constructor_adds_for_paths(self):
        # Line 5: computing output in for-scope keeps the iterated nodes.
        result = paths_of("for $x in /a/b return <r/>")
        assert "/child::a/child::b" in result

    def test_if_extracts_all_three_parts(self):
        result = paths_of("if (/a/c) then /a/t else /a/e")
        assert "/child::a/child::c" in result
        assert "/child::a/child::t/descendant-or-self::node()" in result
        assert "/child::a/child::e/descendant-or-self::node()" in result

    def test_count_argument_not_materialised(self):
        # Line 14 with F(count, 1) = self::node.
        result = paths_of("count(/a/b)")
        assert "/child::a/child::b" in result
        assert "/child::a/child::b/descendant-or-self::node()" not in result

    def test_string_argument_materialised(self):
        result = paths_of("string(/a/b)")
        assert "/child::a/child::b/descendant-or-self::node()" in result

    def test_comparison_operands_materialised(self):
        # Our documented refinement: value comparisons read string values.
        result = paths_of("for $x in /a where $x/b = 3 return count($x)")
        assert any(p.startswith("/child::a/child::b/descendant-or-self") for p in result)

    def test_predicates_become_conditions(self):
        result = paths_of("for $x in /a[b] return count($x)")
        assert "/child::a[child::b]" in result

    def test_free_variable_rejected(self):
        with pytest.raises(AnalysisError):
            extract_paths("$unbound/a")

    def test_attribute_interpolation_materialises(self):
        result = paths_of('for $x in /a return <r v="{$x/b}"/>')
        assert any("child::b/descendant-or-self" in p for p in result)

    def test_deduplication(self):
        result = extract_paths("for $x in /a/b return count($x), count(/a/b)")
        rendered = [str(path) for path in result]
        assert len(rendered) == len(set(rendered))


class TestPaperSection5Scenario:
    """The paper's motivating Section 5 example: without the rewriting the
    descendant-or-self path annuls pruning; with it the predicate refines
    the extraction."""

    QUERY = (
        "for $y in /site//node() return "
        "if ($y/author = 'Dante') then <r>{$y}</r> else ()"
    )

    def test_unrewritten_extraction_degenerates(self):
        result = paths_of(self.QUERY)
        # A path ending descendant-or-self::node with no condition exists:
        assert any(
            p.endswith("descendant-or-self::node()") and "[" not in p for p in result
        )

    def test_rewritten_extraction_carries_the_condition(self):
        from repro.xquery.rewrite import rewrite_query

        rewritten = rewrite_query(parse_xquery(self.QUERY))
        result = {str(path) for path in extract_paths(rewritten)}
        assert any("child::author" in p and "[" in p for p in result)


class TestWorkloadExtraction:
    def test_every_xmark_query_extracts(self):
        from repro.workloads.xmark import XMARK_QUERIES
        from repro.xquery.rewrite import rewrite_query

        for name, text in XMARK_QUERIES.items():
            paths = extract_paths(rewrite_query(parse_xquery(text)))
            assert paths, name
            for path in paths:
                assert path.steps, name
