"""Fuzz battery: seeded hostile input against the governed pipeline.

The contract under test is the robustness guarantee of the resource
governance layer: for *any* input — well-formed or garbage — a prune call
under :meth:`Limits.strict` terminates promptly and either

* returns a clean :class:`~repro.api.PruneResult`, or
* raises a structured :class:`~repro.errors.ReproError` subclass.

Never an uncaught exception, never a hang, never a partial output file.

Each seed deterministically builds a small valid bibliography and then
applies one to three hostile mutations drawn from a catalogue of attack
shapes: pathological nesting, megabyte attribute values, dropped or
swapped closing tags, truncation at an arbitrary byte, NUL and control
characters, BOMs and lone surrogates, attribute floods, unterminated
comment/CDATA/PI constructs, and raw garbage runs.  Sources are fed as
streams so even inputs that look like file paths cannot escape into
filesystem dispatch.

The default run covers 50 seeds (x fast/event path) and rides in the
normal suite; the 500-seed sweep is marked ``slow``::

    PYTHONPATH=src python -m pytest tests/test_fuzz_robustness.py -m slow
"""

from __future__ import annotations

import io
import random
import time

import pytest

from repro import Limits, prune
from repro.api import PruneResult
from repro.dtd.grammar import grammar_from_text
from repro.errors import ReproError

QUICK_SEEDS = 50
FULL_SEEDS = 500

#: Strict profile with a real (but test-friendly) wall-clock budget.
LIMITS = Limits.strict().replace(deadline=5.0)

#: Hard per-case hang guard, well above the governed deadline.
WALL_SECONDS = 30.0

DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ATTLIST book id CDATA #IMPLIED>
"""

GRAMMAR = grammar_from_text(DTD, "bib")
PROJECTOR = frozenset({"bib", "book", "title"})


# -- hostile-document generator ------------------------------------------------


def _valid_base(rng: random.Random) -> str:
    books = []
    for i in range(rng.randint(0, 8)):
        authors = "".join(
            f"<author>a{rng.randint(0, 99)}</author>" for _ in range(rng.randint(0, 3))
        )
        books.append(
            f'<book id="b{i}"><title>t{rng.randint(0, 999)}</title>'
            f"{authors}<year>{rng.randint(1900, 2026)}</year></book>"
        )
    return "<bib>" + "".join(books) + "</bib>"


def _mut_deep_nesting(rng: random.Random, doc: str) -> str:
    depth = rng.randint(100, 4000)
    closes = rng.choice((depth, depth - 1, depth // 2, 0))
    return doc[:-6] + "<book>" * depth + "</book>" * closes + "</bib>"


def _mut_giant_attribute(rng: random.Random, doc: str) -> str:
    value = "x" * ((1 << 20) + rng.randint(1, 4096))
    return doc.replace("<bib>", f'<bib junk="{value}">', 1)


def _mut_attribute_flood(rng: random.Random, doc: str) -> str:
    attrs = " ".join(f'a{i}="v{i}"' for i in range(rng.randint(50, 400)))
    return doc.replace("<bib>", f"<bib {attrs}>", 1)


def _mut_giant_text(rng: random.Random, doc: str) -> str:
    blob = rng.choice(("y", "&amp;", "<![CDATA[z]]>")) * rng.randint(1000, 5000)
    return doc[:-6] + f"<book><title>{blob}</title></book>" + "</bib>"


def _mut_drop_close(rng: random.Random, doc: str) -> str:
    closes = [i for i in range(len(doc)) if doc.startswith("</", i)]
    if not closes:
        return doc
    start = rng.choice(closes)
    end = doc.find(">", start)
    return doc[:start] + doc[end + 1 :] if end != -1 else doc[:start]


def _mut_swap_tags(rng: random.Random, doc: str) -> str:
    a, b = "</title>", "</book>"
    if a in doc and b in doc:
        sentinel = "\x00SWAP\x00"
        doc = doc.replace(a, sentinel, 1).replace(b, a, 1).replace(sentinel, b, 1)
    return doc


def _mut_truncate(rng: random.Random, doc: str) -> str:
    return doc[: rng.randint(0, len(doc))]


def _mut_control_bytes(rng: random.Random, doc: str) -> str:
    for _ in range(rng.randint(1, 8)):
        pos = rng.randint(0, len(doc))
        doc = doc[:pos] + rng.choice("\x00\x01\x08\x0b\x1f\x7f") + doc[pos:]
    return doc


def _mut_weird_unicode(rng: random.Random, doc: str) -> str:
    pos = rng.randint(0, len(doc))
    glyph = rng.choice(("\ufeff", "\ud800", "\udfff", "\U0001f600", "\ufffe"))
    return doc[:pos] + glyph + doc[pos:]


def _mut_unterminated(rng: random.Random, doc: str) -> str:
    tail = rng.choice(("<!--", "<![CDATA[", "<?pi ", "<book", "</", "<", "<!DOCT"))
    return doc + tail


def _mut_garbage(rng: random.Random, doc: str) -> str:
    run = "".join(chr(rng.randint(1, 0x2FF)) for _ in range(rng.randint(5, 80)))
    pos = rng.randint(0, len(doc))
    return doc[:pos] + run + doc[pos:]


def _mut_unknown_tags(rng: random.Random, doc: str) -> str:
    return doc[:-6] + "<mystery><deep>?</deep></mystery>" + "</bib>"


MUTATIONS = (
    _mut_deep_nesting,
    _mut_giant_attribute,
    _mut_attribute_flood,
    _mut_giant_text,
    _mut_drop_close,
    _mut_swap_tags,
    _mut_truncate,
    _mut_control_bytes,
    _mut_weird_unicode,
    _mut_unterminated,
    _mut_garbage,
    _mut_unknown_tags,
)


def hostile_case(seed: int) -> tuple[str, list[str]]:
    """Deterministic hostile document for ``seed`` plus the names of the
    mutations that produced it (for failure triage)."""
    rng = random.Random(seed)
    doc = _valid_base(rng)
    applied = []
    for _ in range(rng.randint(1, 3)):
        mutate = rng.choice(MUTATIONS)
        applied.append(mutate.__name__)
        doc = mutate(rng, doc)
    return doc, applied


def hostile_document(seed: int) -> str:
    return hostile_case(seed)[0]


# -- the contract --------------------------------------------------------------


def _assert_contract(seed: int, fast: bool) -> None:
    doc, applied = hostile_case(seed)
    started = time.monotonic()
    try:
        result = prune(
            io.StringIO(doc),
            GRAMMAR,
            PROJECTOR,
            fast=fast,
            limits=LIMITS,
        )
    except ReproError:
        pass  # structured refusal: a clean outcome
    else:
        assert isinstance(result, PruneResult), (
            f"seed {seed} ({applied}): prune returned {type(result).__name__}"
        )
        assert isinstance(result.text, str)
    elapsed = time.monotonic() - started
    assert elapsed < WALL_SECONDS, (
        f"seed {seed} ({applied}): took {elapsed:.1f}s "
        f"(deadline {LIMITS.deadline}s ignored?)"
    )


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "events"])
@pytest.mark.parametrize("seed", range(QUICK_SEEDS))
def test_fuzz_quick(seed, fast):
    _assert_contract(seed, fast)


@pytest.mark.slow
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "events"])
@pytest.mark.parametrize("seed", range(QUICK_SEEDS, FULL_SEEDS))
def test_fuzz_full(seed, fast):
    _assert_contract(seed, fast)


@pytest.mark.parametrize("seed", range(10))
def test_fuzz_no_partial_output_file(seed, tmp_path):
    """A refused prune must not leave a partial output file behind."""
    doc = hostile_document(seed)
    out = tmp_path / f"out-{seed}.xml"
    try:
        prune(io.StringIO(doc), GRAMMAR, PROJECTOR, out=str(out), limits=LIMITS)
    except ReproError:
        assert not out.exists(), f"seed {seed}: partial output left on refusal"
    else:
        assert out.exists()


def test_generator_is_deterministic():
    assert hostile_document(7) == hostile_document(7)


def test_generator_covers_every_mutation():
    """Sanity: across the quick seed range, every attack shape fires."""
    fired = set()
    for seed in range(QUICK_SEEDS):
        fired.update(hostile_case(seed)[1])
    assert fired == {m.__name__ for m in MUTATIONS}
