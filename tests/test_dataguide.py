"""Dataguide (DTD-less) grammar inference tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import analyze
from repro.dtd.dataguide import DataguideBuilder, grammar_from_documents
from repro.dtd.grammar import text_name
from repro.dtd.validator import validate
from repro.errors import GrammarError
from repro.projection.tree import prune_document
from repro.workloads.randomgen import random_grammar, random_pathl, random_valid_document
from repro.xmltree.builder import parse_document
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.xpathl import evaluate_pathl
from tests.conftest import BOOK_XML


class TestSummarisation:
    def test_children_and_text_observed(self):
        grammar = grammar_from_documents(parse_document(BOOK_XML))
        assert grammar.root == "bib"
        assert grammar.children_of("bib") == {"book"}
        assert text_name("title") in grammar.children_of("title")

    def test_attributes_observed(self):
        grammar = grammar_from_documents(parse_document(BOOK_XML))
        assert "book@isbn" in grammar.names()

    def test_summarised_document_validates(self):
        document = parse_document(BOOK_XML)
        grammar = grammar_from_documents(document)
        interpretation = validate(document, grammar)
        assert set(interpretation.names) == document.ids()

    def test_multiple_documents_union(self):
        first = parse_document("<r><a>1</a></r>")
        second = parse_document("<r><b/></r>")
        grammar = grammar_from_documents([first, second])
        assert grammar.children_of("r") == {"a", "b"}
        validate(first, grammar)
        validate(second, grammar)

    def test_streaming_ingestion_matches_tree_ingestion(self):
        document = parse_document(BOOK_XML)
        tree_builder = DataguideBuilder()
        tree_builder.add_document(document)
        event_builder = DataguideBuilder()
        event_builder.add_events(parse_events(BOOK_XML))
        tree_names = tree_builder.grammar().names()
        event_names = event_builder.grammar().names()
        assert tree_names == event_names

    def test_statistics_counts_occurrences(self):
        builder = DataguideBuilder()
        builder.add_document(parse_document(BOOK_XML))
        assert builder.statistics()["book"].occurrences == 3

    def test_empty_builder_raises(self):
        with pytest.raises(GrammarError):
            DataguideBuilder().grammar()

    def test_ambiguous_root_requires_choice(self):
        builder = DataguideBuilder()
        builder.add_document(parse_document("<a/>"))
        builder.add_document(parse_document("<b/>"))
        with pytest.raises(GrammarError):
            builder.grammar()
        builder.grammar(root="a")


class TestDTDLessPruning:
    def test_analyze_and_prune_without_a_dtd(self):
        document = parse_document(BOOK_XML)
        grammar = grammar_from_documents(document)
        interpretation = validate(document, grammar)
        query = "//book[author = 'Dante']/title"
        result = analyze(grammar, [query])
        pruned = prune_document(document, interpretation, result.projector)
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        )
        assert pruned.size() < document.size()

    def test_pruning_power_survives(self):
        document = parse_document(BOOK_XML)
        grammar = grammar_from_documents(document)
        interpretation = validate(document, grammar)
        result = analyze(grammar, ["//price"])
        pruned = prune_document(document, interpretation, result.projector)
        tags = {node.tag for node in pruned.elements()}
        assert "author" not in tags and "price" in tags

    def test_on_xmark_sample(self, xmark):
        _, document, _ = xmark
        grammar = grammar_from_documents(document)
        interpretation = validate(document, grammar)
        query = "/site/people/person/name"
        result = analyze(grammar, [query])
        pruned = prune_document(document, interpretation, result.projector)
        assert (
            XPathEvaluator(pruned).select_ids(query)
            == XPathEvaluator(document).select_ids(query)
        )
        assert pruned.size() < 0.2 * document.size()


# -- property: the dataguide pipeline is sound for the summarised document ------


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
def test_dataguide_projector_soundness(grammar_seed, document_seed, path_seed):
    source = random_grammar(grammar_seed)
    document = random_valid_document(source, document_seed)
    inferred = grammar_from_documents(document)
    interpretation = validate(document, inferred)
    pathl = random_pathl(source, path_seed)
    from repro.core.projector import infer_projector

    projector = infer_projector(inferred, pathl)
    pruned = prune_document(document, interpretation, projector | {inferred.root})
    original = sorted(node.node_id for node in evaluate_pathl(document, pathl))
    after = sorted(node.node_id for node in evaluate_pathl(pruned, pathl))
    assert original == after


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_summarised_documents_always_validate(grammar_seed, document_seed):
    source = random_grammar(grammar_seed, allow_recursion=grammar_seed % 2 == 0)
    document = random_valid_document(source, document_seed, max_depth=10)
    inferred = grammar_from_documents(document)
    validate(document, inferred)
    # And re-serialised copies too (idempotence of the summary).
    again = parse_document(serialize(document))
    validate(again, inferred)
