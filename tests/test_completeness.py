"""Theorem 4.7 completeness experiments.

On a \\*-guarded, non-recursive, parent-unambiguous DTD and a
strongly-specified path, the inferred projector is *optimal*: removing any
name (with its descendants) from it changes the query answer on some
witness document.  We verify this empirically by searching sampled valid
documents for witnesses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.projector import infer_projector
from repro.dtd.grammar import Grammar, grammar_from_text
from repro.dtd.properties import analyze_grammar
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.randomgen import random_grammar, random_valid_document
from repro.xpath.ast import Axis, KindTest
from repro.xpath.xpathl import PathL, evaluate_pathl, parse_pathl

#: A *-guarded, non-recursive, parent-unambiguous DTD for the experiments.
#: (Each tag has a unique parent; a shared "label" child of both shelf and
#: tin would already be parent-ambiguous per Def 4.3(3).)
CLEAN_DTD = """
<!ELEMENT store (dept*)>
<!ELEMENT dept (dname, (shelf)*)>
<!ELEMENT shelf (slabel?, (tin | jar)*)>
<!ELEMENT tin (tlabel)>
<!ELEMENT jar (jlabel, note?)>
<!ELEMENT dname (#PCDATA)>
<!ELEMENT slabel (#PCDATA)>
<!ELEMENT tlabel (#PCDATA)>
<!ELEMENT jlabel (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"""


@pytest.fixture(scope="module")
def clean_grammar() -> Grammar:
    grammar = grammar_from_text(CLEAN_DTD, "store")
    assert analyze_grammar(grammar).completeness_class
    return grammar


STRONGLY_SPECIFIED = [
    "child::dept/child::shelf/child::tin",
    "descendant::jar/child::jlabel",
    "descendant::node()/self::tin/parent::node()",
    "descendant::node()[child::jlabel]/self::jar",
    "child::dept/child::dname",
    "descendant::tin/ancestor::node()/self::dept",
]


def is_strongly_specified(pathl: PathL) -> bool:
    """Definition 4.6 (used by the random experiment to filter paths)."""

    def node_test(step):
        return isinstance(step.test, KindTest) and step.test.kind == "node"

    steps = pathl.steps
    for index, step in enumerate(steps):
        if step.condition is not None:
            if len(step.condition) != 1:
                return False  # (iii): at most one path per predicate
            disjunct = step.condition[0]
            if node_test(disjunct.steps[-1]):
                return False  # (iii): must not end with a node test
            for inner in disjunct.steps:
                if inner.axis in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
                    return False  # (i): no backward axes in predicates
            for first, second in zip(disjunct.steps, disjunct.steps[1:]):
                if node_test(first) and node_test(second):
                    return False  # (ii) inside predicates
        if index + 1 < len(steps):
            if node_test(step) and node_test(steps[index + 1]):
                return False  # (ii): no two consecutive node tests
    return True


def find_witness(grammar, pathl, reduced, samples=60):
    """Search sampled documents for one where pruning with ``reduced``
    changes the answer."""
    for seed in range(samples):
        document = random_valid_document(grammar, seed)
        interpretation = validate(document, grammar)
        original = sorted(n.node_id for n in evaluate_pathl(document, pathl))
        pruned = prune_document(document, interpretation, reduced | {grammar.root})
        after = sorted(n.node_id for n in evaluate_pathl(pruned, pathl))
        if original != after:
            return document
    return None


@pytest.mark.parametrize("text", STRONGLY_SPECIFIED)
def test_paper_definition_accepts_these(text):
    assert is_strongly_specified(parse_pathl(text))


@pytest.mark.parametrize(
    "text",
    [
        "descendant::node()/ancestor::node()/self::tin",  # (ii) on the spine
        "descendant::node()[child::tlabel/child::node()]/self::tin",  # (ii) inside
        "child::dept[descendant::node()/parent::shelf]/child::dname",  # (i)
        "self::store[child::dept or child::dname]",  # (iii): two paths
        "child::dept[child::node()]",  # (iii): ends with node test
    ],
)
def test_paper_definition_rejects_these(text):
    assert not is_strongly_specified(parse_pathl(text))


@pytest.mark.parametrize("text", STRONGLY_SPECIFIED)
def test_theorem_4_7_no_name_is_removable(clean_grammar, text):
    """For each name Y in the inferred projector, pruning with
    π \\ ({Y} ∪ descendants(Y)) changes the answer on some document."""
    pathl = parse_pathl(text)
    projector = infer_projector(clean_grammar, pathl)
    for name in sorted(projector):
        if name == clean_grammar.root:
            continue  # removing the root empties the document trivially
        reduced = frozenset(
            projector - ({name} | clean_grammar.descendants_of(name))
        )
        witness = find_witness(clean_grammar, pathl, reduced)
        assert witness is not None, (
            f"{name} is removable from the projector of {text}: not complete"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 5_000), st.integers(0, 5_000))
def test_theorem_4_7_random(grammar_seed, path_seed):
    """Randomised variant over generated completeness-class grammars and
    strongly-specified condition-free downward paths."""
    from repro.workloads.randomgen import random_pathl

    grammar = random_grammar(grammar_seed, star_guarded_only=True)
    if not analyze_grammar(grammar).completeness_class:
        return
    pathl = random_pathl(grammar, path_seed, with_conditions=False)
    if not is_strongly_specified(pathl):
        return
    if any(step.axis in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF) for step in pathl.steps):
        return  # keep the witness search cheap and decisive
    projector = infer_projector(grammar, pathl)
    # Check at most three names to bound runtime.
    for name in sorted(projector - {grammar.root})[:3]:
        reduced = frozenset(projector - ({name} | grammar.descendants_of(name)))
        assert find_witness(grammar, pathl, reduced, samples=40) is not None, name
