"""CLI observability flags: --trace-out and --metrics on
analyze/prune/run, plus the obs-era flag interactions (--no-fast,
--cache-stats) driven end-to-end through main()."""

import json

import pytest

from repro.cli import main
from tests.conftest import BOOK_DTD, BOOK_XML


@pytest.fixture()
def workspace(tmp_path):
    dtd = tmp_path / "bib.dtd"
    dtd.write_text(BOOK_DTD)
    xml = tmp_path / "bib.xml"
    xml.write_text(BOOK_XML)
    return tmp_path, str(dtd), str(xml)


def _read_trace(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def _spans(records, name=None):
    return [
        r for r in records
        if r["type"] == "span" and (name is None or r["name"] == name)
    ]


class TestTraceOut:
    def test_prune_trace_has_analysis_and_prune_spans(self, workspace, capsys):
        tmp, dtd, xml = workspace
        trace = tmp / "trace.jsonl"
        code = main([
            "prune", "--dtd", dtd, "--root", "bib", "--query", "//title",
            str(xml), str(tmp / "out.xml"), "--trace-out", str(trace),
        ])
        assert code == 0
        records = _read_trace(trace)
        assert _spans(records, "analysis")
        [prune_span] = _spans(records, "prune")
        assert prune_span["attrs"]["mode"] == "fast"
        # Counters mirror the PruneStats the command printed.
        out = capsys.readouterr().out
        counters = prune_span["counters"]
        assert f"size: {counters['bytes_in']} -> {counters['bytes_out']} bytes" in out
        assert f"nodes: {counters['nodes_in']} -> {counters['nodes_out']}" in out

    def test_no_fast_switches_span_mode(self, workspace):
        tmp, dtd, xml = workspace
        trace = tmp / "trace.jsonl"
        code = main([
            "prune", "--dtd", dtd, "--root", "bib", "--query", "//title",
            str(xml), str(tmp / "out.xml"), "--no-fast",
            "--trace-out", str(trace),
        ])
        assert code == 0
        [prune_span] = _spans(_read_trace(trace), "prune")
        assert prune_span["attrs"]["mode"] == "events"

    def test_run_trace_covers_the_whole_pipeline(self, workspace):
        tmp, dtd, xml = workspace
        trace = tmp / "trace.jsonl"
        code = main([
            "run", "--dtd", dtd, "--root", "bib", "--query", "//title",
            xml, "--prune", "--trace-out", str(trace),
        ])
        assert code == 0
        records = _read_trace(trace)
        for name in ("parse", "analysis", "prune", "query"):
            assert _spans(records, name), f"missing {name} span"
        [prune_span] = _spans(records, "prune")
        assert prune_span["attrs"]["mode"] == "tree"
        [query_span] = _spans(records, "query")
        assert query_span["counters"]["results"] >= 1

    def test_analyze_trace(self, workspace):
        from repro.core.cache import default_cache

        default_cache().clear()  # the process-wide cache may already hold it
        tmp, dtd, _ = workspace
        trace = tmp / "trace.jsonl"
        assert main([
            "analyze", "--dtd", dtd, "--root", "bib", "--query", "//title",
            "--trace-out", str(trace),
        ]) == 0
        records = _read_trace(trace)
        assert _spans(records, "analysis.query")
        assert any(
            r["type"] == "counter" and r["name"] == "cache.misses"
            for r in records
        )

    def test_tracer_resets_after_main(self, workspace):
        from repro import obs

        tmp, dtd, _ = workspace
        assert main([
            "analyze", "--dtd", dtd, "--root", "bib", "--query", "//title",
            "--trace-out", str(tmp / "t.jsonl"),
        ]) == 0
        assert not obs.enabled()


class TestMetrics:
    def test_metrics_summary_on_stderr(self, workspace, capsys):
        tmp, dtd, xml = workspace
        code = main([
            "prune", "--dtd", dtd, "--root", "bib", "--query", "//title",
            xml, str(tmp / "out.xml"), "--metrics",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "-- metrics" in err
        assert "prune" in err and "analysis" in err

    def test_no_flags_no_metrics(self, workspace, capsys):
        tmp, dtd, xml = workspace
        assert main([
            "prune", "--dtd", dtd, "--root", "bib", "--query", "//title",
            xml, str(tmp / "out.xml"),
        ]) == 0
        assert "-- metrics" not in capsys.readouterr().err


class TestFlagInteractions:
    def test_cache_stats_printed(self, workspace, capsys):
        _, dtd, _ = workspace
        assert main([
            "analyze", "--dtd", dtd, "--root", "bib", "--query", "//title",
            "--cache-stats",
        ]) == 0
        assert "projector cache:" in capsys.readouterr().out

    def test_validate_subcommand_exit_codes(self, workspace, tmp_path):
        _, dtd, xml = workspace
        assert main(["validate", "--dtd", dtd, "--root", "bib", xml]) == 0
        bad = tmp_path / "bad.xml"
        bad.write_text("<bib><book><author>a</author><title>t</title></book></bib>")
        assert main(["validate", "--dtd", dtd, "--root", "bib", str(bad)]) == 1
