"""Prune-while-loading and index-pruning tests (the conclusion's
database-integration features)."""

import io

import pytest

from repro.core.pipeline import analyze
from repro.dtd.validator import validate
from repro.engine.index import TagIndex, index_of_pruned_document
from repro.engine.loader import load_full, load_pruned, load_pruned_validating
from repro.errors import ProjectorError, ValidationError
from repro.workloads.xmark import XMARK_QUERIES, xmark_grammar
from repro.xmltree.serializer import serialize
from repro.xquery.evaluator import XQueryEvaluator
from tests.conftest import BOOK_DTD, BOOK_XML


class TestPruneWhileLoading:
    def test_loaded_tree_matches_prune_then_load(self, book_grammar):
        projector = book_grammar.projector_closure(["author", "author#text"])
        through_loader = load_pruned(io.StringIO(BOOK_XML), book_grammar, projector)
        from repro.api import prune

        pruned_text = prune(BOOK_XML, book_grammar, projector).text
        assert serialize(through_loader.document) == pruned_text

    def test_skipped_nodes_are_never_built(self, book_grammar):
        projector = book_grammar.projector_closure(["title"])
        full = load_full(io.StringIO(BOOK_XML))
        pruned = load_pruned(io.StringIO(BOOK_XML), book_grammar, projector)
        assert pruned.nodes_built < full.nodes_built
        assert pruned.model_bytes < full.model_bytes
        assert pruned.prune_stats is not None
        assert pruned.prune_stats.elements_in == sum(
            1 for _ in full.document.elements()
        )

    def test_validating_load_accepts_valid(self, book_grammar):
        projector = book_grammar.projector_closure(["title"])
        report = load_pruned_validating(io.StringIO(BOOK_XML), book_grammar, projector)
        assert report.document.root.tag == "bib"

    def test_validating_load_rejects_invalid(self, book_grammar):
        projector = book_grammar.projector_closure(["title"])
        bad = "<bib><book><author>a</author><title>t</title></book></bib>"
        with pytest.raises(ValidationError):
            load_pruned_validating(io.StringIO(bad), book_grammar, projector)

    def test_query_answers_match_on_loader_built_tree(self, xmark):
        grammar, document, _ = xmark
        query = XMARK_QUERIES["QM01"]
        projector = analyze(grammar, query, language="xquery").projector
        report = load_pruned(io.StringIO(serialize(document)), grammar, projector)
        assert (
            XQueryEvaluator(report.document).evaluate_serialized(query)
            == XQueryEvaluator(document).evaluate_serialized(query)
        )

    def test_load_reports_time(self, book_grammar):
        report = load_full(io.StringIO(BOOK_XML))
        assert report.seconds >= 0
        assert report.megabytes > 0


class TestTagIndex:
    def test_build_and_lookup(self, book_document):
        index = TagIndex.build(book_document)
        assert len(index.lookup("book")) == 3
        assert len(index.lookup("author")) == 3
        assert index.lookup("nothing") == []

    def test_postings_in_document_order(self, book_document):
        index = TagIndex.build(book_document)
        for nodes in index.by_tag.values():
            assert nodes == sorted(nodes)

    def test_stats(self, book_document):
        index = TagIndex.build(book_document)
        stats = index.stats()
        assert stats.entries == len(index.by_tag)
        assert stats.postings == sum(len(v) for v in index.by_tag.values())
        assert stats.model_bytes > 0

    def test_index_pruning_matches_reference(self, book_grammar, book_document, book_interpretation):
        index = TagIndex.build_for(book_document)
        projector = book_grammar.projector_closure(["author", "author#text"])
        via_index = index.pruned(book_interpretation, projector)
        via_document = index_of_pruned_document(book_document, book_interpretation, projector)
        assert via_index.by_tag == via_document.by_tag
        assert via_index.text_nodes == via_document.text_nodes

    def test_index_pruning_on_xmark(self, xmark):
        grammar, document, interpretation = xmark
        index = TagIndex.build_for(document)
        projector = analyze(grammar, ["/site/people/person/name"]).projector
        pruned = index.pruned(interpretation, projector)
        reference = index_of_pruned_document(document, interpretation, projector)
        assert pruned.by_tag == reference.by_tag
        # The pruned index is much smaller (the TIMBER motivation).
        assert pruned.stats().model_bytes < 0.2 * index.stats().model_bytes

    def test_pruned_index_requires_valid_projector(self, book_document, book_interpretation):
        index = TagIndex.build_for(book_document)
        with pytest.raises(ProjectorError):
            index.pruned(book_interpretation, frozenset({"title"}))

    def test_whitespace_text_is_dropped(self, book_grammar):
        from repro.xmltree.builder import parse_document

        document = parse_document(
            "<bib>\n  <book><title>t</title><author>a</author></book>\n</bib>"
        )
        interpretation = validate(document, book_grammar)
        index = TagIndex.build_for(document)
        pruned = index.pruned(interpretation, book_grammar.reachable_names())
        # Every surviving text posting has a name (no ignorable whitespace).
        assert all(node_id in interpretation for node_id in pruned.text_nodes)
