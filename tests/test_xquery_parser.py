"""XQuery FLWR-core parser tests."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xpath import ast as xp
from repro.xquery.ast import (
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    Sequence,
    free_variables,
)
from repro.xquery.parser import parse_xquery, strip_comments


class TestFLWOR:
    def test_simple_for(self):
        query = parse_xquery("for $x in /a/b return $x")
        assert isinstance(query, ForExpr)
        assert query.variable == "x"
        assert isinstance(query.body, xp.VariableRef)

    def test_where_desugars_to_if(self):
        query = parse_xquery("for $x in /a where $x/b return $x")
        assert isinstance(query, ForExpr)
        assert isinstance(query.body, IfExpr)
        assert isinstance(query.body.else_branch, EmptySequence)

    def test_let(self):
        query = parse_xquery("let $k := count(/a) return $k")
        assert isinstance(query, LetExpr)
        assert isinstance(query.value, xp.FunctionCall)

    def test_interleaved_for_let(self):
        query = parse_xquery(
            "for $p in /a let $q := $p/b for $r in $q/c return $r"
        )
        assert isinstance(query, ForExpr)
        assert isinstance(query.body, LetExpr)
        assert isinstance(query.body.body, ForExpr)

    def test_multiple_bindings_in_one_for(self):
        query = parse_xquery("for $x in /a, $y in $x/b return $y")
        assert isinstance(query, ForExpr) and isinstance(query.body, ForExpr)

    def test_nested_flwor_in_let(self):
        query = parse_xquery(
            "let $a := for $t in /x return $t return count($a)"
        )
        assert isinstance(query, LetExpr)
        assert isinstance(query.value, ForExpr)

    def test_missing_return_raises(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("for $x in /a")

    def test_missing_assign_raises(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("let $x = 1 return $x")


class TestConstructors:
    def test_literal_content(self):
        query = parse_xquery("<r>hello</r>")
        assert isinstance(query, ElementConstructor)
        assert query.content == ("hello",)

    def test_enclosed_expression(self):
        query = parse_xquery("<r>{/a/b}</r>")
        assert isinstance(query.content[0], xp.LocationPath)

    def test_nested_constructor(self):
        query = parse_xquery("<r><s>{$x}</s></r>")
        inner = query.content[0]
        assert isinstance(inner, ElementConstructor) and inner.tag == "s"

    def test_attributes_with_interpolation(self):
        query = parse_xquery('<r name="{$p/name}" fixed="yes"/>')
        attrs = dict(query.attributes)
        assert isinstance(attrs["name"].parts[0], xp.PathExpr)
        assert attrs["fixed"].parts == ("yes",)

    def test_mismatched_close_raises(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("<a>x</b>")

    def test_sequence_inside_braces(self):
        query = parse_xquery("<r>{1, 2}</r>")
        assert isinstance(query.content[0], Sequence)


class TestExpressions:
    def test_empty_sequence(self):
        assert isinstance(parse_xquery("()"), EmptySequence)

    def test_top_level_sequence(self):
        query = parse_xquery("1, 2, 3")
        assert isinstance(query, Sequence) and len(query.items) == 3

    def test_if_then_else(self):
        query = parse_xquery("if ($x) then 1 else 2")
        assert isinstance(query, IfExpr)

    def test_xpath_island_with_keywords_in_strings(self):
        query = parse_xquery("for $x in /a[b = 'no return here'] return $x")
        assert isinstance(query, ForExpr)

    def test_parenthesised_xpath_continuation(self):
        query = parse_xquery("(/a | /b)")
        assert isinstance(query, xp.UnionExpr)

    def test_comparison_operators_survive(self):
        query = parse_xquery("for $x in /a where $x/b > 5 and $x/c < 9 return $x")
        assert isinstance(query, ForExpr)

    def test_comments_are_stripped(self):
        query = parse_xquery("(: note (: nested :) :) for $x in /a return $x")
        assert isinstance(query, ForExpr)

    def test_unterminated_comment(self):
        with pytest.raises(XQuerySyntaxError):
            strip_comments("(: oops")

    def test_trailing_garbage_raises(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("for $x in /a return $x }")


class TestFreeVariables:
    def test_for_binds(self):
        query = parse_xquery("for $x in /a return $x/b")
        assert free_variables(query) == frozenset()

    def test_free_variable_detected(self):
        query = parse_xquery("for $x in /a return $y")
        assert free_variables(query) == {"y"}

    def test_let_binds_in_body_only(self):
        query = parse_xquery("let $x := $x return $x")
        assert free_variables(query) == {"x"}

    def test_constructor_attributes_counted(self):
        query = parse_xquery('<r a="{$z}"/>')
        assert free_variables(query) == {"z"}

    def test_predicate_variables_counted(self):
        query = parse_xquery("for $x in /a return /b[c = $w]")
        assert free_variables(query) == {"w"}


class TestWorkloadQueries:
    def test_all_xmark_queries_parse(self):
        from repro.workloads.xmark import XMARK_QUERIES

        for name, text in XMARK_QUERIES.items():
            query = parse_xquery(text)
            assert free_variables(query) == frozenset(), name
