"""XPath value-system tests: coercions, comparisons, document order."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.builder import parse_document
from repro.xpath.values import (
    AttributeNode,
    compare,
    document_order_key,
    format_number,
    sort_document_order,
    string_value,
    to_boolean,
    to_number,
    to_string,
)


class TestCoercions:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, True),
            (0.0, False),
            (1.5, True),
            (float("nan"), False),
            ("", False),
            ("x", True),
            ([], False),
        ],
    )
    def test_to_boolean(self, value, expected):
        assert to_boolean(value) is expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, 1.0),
            (False, 0.0),
            (2.5, 2.5),
            ("  42 ", 42.0),
            ("", None),  # NaN
            ("abc", None),
        ],
    )
    def test_to_number(self, value, expected):
        result = to_number(value)
        if expected is None:
            assert math.isnan(result)
        else:
            assert result == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, "true"),
            (False, "false"),
            (3.0, "3"),
            (3.5, "3.5"),
            ("s", "s"),
            ([], ""),
        ],
    )
    def test_to_string(self, value, expected):
        assert to_string(value) == expected

    def test_format_number_specials(self):
        assert format_number(float("nan")) == "NaN"
        assert format_number(float("inf")) == "Infinity"
        assert format_number(float("-inf")) == "-Infinity"
        assert format_number(-0.0) == "0"

    def test_nodeset_to_string_uses_first(self):
        document = parse_document("<r><a>first</a><a>second</a></r>")
        nodes = [child for child in document.root.children]
        assert to_string(nodes) == "first"


class TestStringValue:
    def test_element_concatenates(self):
        document = parse_document("<r>a<b>c</b>d</r>")
        assert string_value(document.root) == "acd"

    def test_attribute(self):
        document = parse_document('<r k="v"/>')
        attribute = AttributeNode(document.root, "k", "v", 0)
        assert string_value(attribute) == "v"


class TestGeneralComparisons:
    DOC = parse_document("<r><v>1</v><v>5</v><w>5</w></r>")

    def _nodes(self, tag):
        return [node for node in self.DOC.elements() if node.tag == tag]

    def test_set_vs_number(self):
        assert compare(">", self._nodes("v"), 4.0)
        assert not compare(">", self._nodes("v"), 5.0)

    def test_number_vs_set_mirrors(self):
        assert compare("<", 4.0, self._nodes("v"))
        assert not compare("<", 5.0, self._nodes("v"))

    def test_set_vs_set_existential(self):
        assert compare("=", self._nodes("v"), self._nodes("w"))
        assert compare("!=", self._nodes("v"), self._nodes("w"))  # 1 != 5

    def test_empty_set_comparisons_false(self):
        assert not compare("=", [], "anything")
        assert not compare("!=", [], "anything")
        assert not compare("<", [], 5.0)

    def test_boolean_comparisons(self):
        assert compare("=", True, self._nodes("v"))  # nonempty -> true
        assert compare("=", False, [])

    def test_string_equality(self):
        assert compare("=", "a", "a")
        assert not compare("=", "a", "b")
        # relational on strings goes numeric (NaN -> false)
        assert not compare("<", "a", "b")

    def test_value_comparisons_atomize_first(self):
        assert compare("eq", self._nodes("v"), "1")
        assert not compare("eq", self._nodes("v"), "5")
        assert compare("lt", self._nodes("v"), "2")

    def test_value_comparison_of_empty_is_false(self):
        assert not compare("eq", [], "1")
        assert not compare("ne", [], "1")

    def test_node_identity(self):
        v = self._nodes("v")
        assert compare("is", [v[0]], [v[0]])
        assert not compare("is", [v[0]], [v[1]])

    def test_node_order(self):
        v = self._nodes("v")
        assert compare("<<", [v[0]], [v[1]])
        assert compare(">>", [v[1]], [v[0]])
        assert not compare("<<", [], [v[0]])

    def test_node_order_requires_nodesets(self):
        with pytest.raises(TypeError):
            compare("is", 1.0, 2.0)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            compare("~~", 1.0, 2.0)


class TestDocumentOrder:
    def test_sort_dedupes_and_orders(self):
        document = parse_document("<r><a/><b/></r>")
        a, b = document.root.children
        assert sort_document_order([b, a, b, document.root]) == [document.root, a, b]

    def test_attribute_between_owner_and_children(self):
        document = parse_document('<r k="v"><c/></r>')
        attribute = AttributeNode(document.root, "k", "v", 0)
        child = document.root.children[0]
        keys = [document_order_key(n) for n in (document.root, attribute, child)]
        assert keys == sorted(keys)

    def test_attribute_equality_by_owner_and_name(self):
        document = parse_document('<r k="v"/>')
        first = AttributeNode(document.root, "k", "v", 0)
        second = AttributeNode(document.root, "k", "v", 0)
        other = AttributeNode(document.root, "j", "v", 1)
        assert first == second and hash(first) == hash(second)
        assert first != other


# -- properties -----------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_number_string_roundtrip(value):
    assert to_number(format_number(value)) == pytest.approx(value, rel=1e-6)


@settings(max_examples=100, deadline=None)
@given(
    st.one_of(st.booleans(), st.floats(allow_nan=False), st.text(max_size=8)),
    st.one_of(st.booleans(), st.floats(allow_nan=False), st.text(max_size=8)),
)
def test_equality_is_symmetric(left, right):
    assert compare("=", left, right) == compare("=", right, left)
    assert compare("!=", left, right) == compare("!=", right, left)


@settings(max_examples=100, deadline=None)
@given(st.floats(allow_nan=False), st.floats(allow_nan=False))
def test_relational_mirror(left, right):
    assert compare("<", left, right) == compare(">", right, left)
    assert compare("<=", left, right) == compare(">=", right, left)
