"""Section 4.1's DTD survey + Section 6's large-DTD analysis overhead.

Two experiments:

* **Use Cases classification** — the paper: "among the ten DTDs defined in
  the [XML Query] Use Cases, seven are both non-recursive and \\*-guarded,
  one is only \\*-guarded, one is only non-recursive, and just one does not
  satisfy either property" (and five of ten are parent-unambiguous);
* **XHTML-scale analysis** — Section 6: analysis time stays negligible
  "even for complex queries and DTDs ... further experiments on large
  DTDs (e.g. XHTML)".

Emits ``benchmarks/results/usecases.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.core.pipeline import analyze
from repro.workloads.usecases import classify_corpus, xhtml_grammar

XHTML_QUERIES = [
    "//div//table/tr/td//a",
    "/html/body//ul/li[a]/span",
    "//blockquote/ancestor::div/p",
    "//form[div or p]//a[@href]",
    "//td/preceding-sibling::th",
]


def test_classification_report(benchmark):
    classification = benchmark.pedantic(classify_corpus, rounds=1, iterations=1)
    lines = [f"{'DTD':>8} {'*-guarded':>10} {'recursive':>10} {'parent-unamb':>13}"]
    both = only_guarded = only_nonrecursive = neither = unambiguous = 0
    for name, props in classification.items():
        lines.append(
            f"{name:>8} {str(props.star_guarded):>10} {str(props.recursive):>10} "
            f"{str(props.parent_unambiguous):>13}"
        )
        if props.star_guarded and not props.recursive:
            both += 1
        elif props.star_guarded:
            only_guarded += 1
        elif not props.recursive:
            only_nonrecursive += 1
        else:
            neither += 1
        unambiguous += props.parent_unambiguous
    summary = (
        f"\nboth={both} only-*-guarded={only_guarded} "
        f"only-non-recursive={only_nonrecursive} neither={neither} "
        f"parent-unambiguous={unambiguous}/10\n"
        "(paper, Section 4.1: 7 / 1 / 1 / 1 and 5/10)\n"
    )
    report = "XML Query Use Cases DTD classification (Def 4.3)\n\n" + "\n".join(lines) + summary
    path = write_report("usecases.txt", report)
    print("\n" + report + f"\n[written to {path}]")
    assert (both, only_guarded, only_nonrecursive, neither) == (7, 1, 1, 1)
    assert unambiguous == 5


def test_xhtml_analysis_overhead(benchmark):
    grammar = xhtml_grammar()
    benchmark.group = "usecases:xhtml-analysis"
    result = benchmark(lambda: analyze(grammar, XHTML_QUERIES))
    assert result.analysis_seconds < 0.5
    assert grammar.is_projector(result.projector)
