"""Extraction benchmark: the fused projecting scan vs the naive
parse-then-walk baseline.

Standalone script (not pytest-benchmark — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_extract.py [--smoke]
        [--factor F] [--repeats N] [--min-speedup R] [--output PATH]

The workload is the ETL shape the extraction surface was built for:
XMark's person directory flattened to one record per ``person`` —
``@id``, ``name/text()``, and ``address/city/text()`` (``address`` is
optional in the DTD, so the NULL path is exercised at scale too).

Two implementations of the same :class:`repro.ExtractSpec`:

* **fused** — ``repro.extract``: one projecting scan, records assembled
  from the pruned event stream, nothing materialized;
* **naive** — :func:`repro.extract.reference.reference_records`: parse
  the whole document into a tree, walk it (the differential oracle).

Record-for-record equality is *asserted*, not assumed, every run; the
gate is the throughput ratio (the PR's target: >= 1.5x) plus the row
count matching the generator's person count.  Writes machine-readable,
provenance-stamped ``benchmarks/results/BENCH_extract.json``.
"""

from __future__ import annotations

import argparse
import io
import os
import sys
import tempfile

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats


PERSON_SPEC_FIELDS = {
    "id": "@id",
    "name": "name/text()",
    "city": "address/city/text()",
}


def _xmark_markup(factor: float) -> str:
    """Generate an XMark document and return its markup (sans the XML
    declaration — the scan paths under test emit none)."""
    from repro.workloads.xmark.generator import generate_file

    fd, xml_path = tempfile.mkstemp(suffix=".xml", prefix="bench_extract_")
    os.close(fd)
    try:
        generate_file(xml_path, factor, seed=99)
        with open(xml_path, encoding="utf-8") as handle:
            handle.readline()
            return handle.read()
    finally:
        os.unlink(xml_path)


def run(factor: float, repeats: int, output_path: str,
        min_speedup: float) -> dict:
    from repro import ExtractSpec, extract
    from repro.extract.reference import reference_records
    from repro.workloads.xmark import xmark_grammar
    from repro.workloads.xmark.generator import XMarkCounts

    grammar = xmark_grammar()
    spec = ExtractSpec(rows="/site/people/person", fields=PERSON_SPEC_FIELDS)
    print(f"generating XMark document (factor {factor}) ...", flush=True)
    xml = _xmark_markup(factor)
    megabytes = len(xml.encode("utf-8")) / 1e6
    expected_rows = XMarkCounts.for_factor(factor).persons

    def fused():
        return extract(io.StringIO(xml), grammar, spec)

    def naive():
        return reference_records(io.StringIO(xml), spec)

    # Correctness first: the two implementations share no code, so equal
    # records are the benchmark's own differential check.
    result = fused()
    oracle = naive()
    assert result.records == oracle, (
        "fused extraction diverged from the tree-walk baseline"
    )
    rows = result.stats.rows_out
    nulls = result.stats.nulls_out

    fused_samples = _stats.repeat_seconds(lambda: extract(
        io.StringIO(xml), grammar, spec, out=io.StringIO()), repeats)
    naive_samples = _stats.repeat_seconds(
        lambda: reference_records(io.StringIO(xml), spec), repeats)
    fused_seconds = _stats.median(fused_samples)
    naive_seconds = _stats.median(naive_samples)
    ratio = naive_seconds / fused_seconds if fused_seconds else float("inf")
    rows_per_s = rows / fused_seconds if fused_seconds else None
    mb_per_s = megabytes / fused_seconds if fused_seconds else None

    print(f"  naive parse+walk {naive_seconds * 1000:8.1f} ms   "
          f"fused scan {fused_seconds * 1000:8.1f} ms   {ratio:5.2f}x", flush=True)
    print(f"  {rows} rows ({nulls} NULLs), "
          f"{rows_per_s:,.0f} rows/s, {mb_per_s:.1f} MB/s", flush=True)

    gates = {
        "speedup": _stats.gate(
            ratio >= min_speedup,
            f"fused extraction speedup {ratio:.2f}x vs the "
            f"{min_speedup}x target over parse-then-walk",
        ),
        "records_identical": _stats.gate(
            True,  # asserted above; reaching here means it held
            "fused and tree-walk records compared equal",
        ),
        "row_count": _stats.gate(
            rows == expected_rows,
            f"{rows} rows extracted vs {expected_rows} persons generated",
        ),
    }
    report = {
        "benchmark": "extract",
        "environment": _stats.environment(xmark_factor=factor),
        "document_megabytes": round(megabytes, 3),
        "xmark_factor": factor,
        "repeats": repeats,
        "spec": spec.to_wire(),
        "rows_out": rows,
        "nulls_out": nulls,
        "fields_out": result.stats.fields_out,
        "naive_seconds": round(naive_seconds, 6),
        "fused_seconds": round(fused_seconds, 6),
        "speedup": round(ratio, 3),
        "min_speedup_required": min_speedup,
        "fused_rows_per_s": round(rows_per_s, 1) if rows_per_s else None,
        "fused_mb_per_s": round(mb_per_s, 2) if mb_per_s else None,
        "gates": gates,
    }
    report["failures"] = _stats.failures(gates)

    _stats.write_report(report, output_path)
    print(f"\nspeedup {ratio:.2f}x (target >= {min_speedup}x)")
    print(f"wrote {output_path}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=float, default=None,
                        help="XMark scale factor (default 0.02; --smoke uses 0.004)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per implementation (median is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="small document + fewer repeats (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if the fused-vs-naive speedup is below this")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "results", "BENCH_extract.json"))
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (0.004 if args.smoke else 0.02)
    repeats = args.repeats if args.repeats is not None else (3 if args.smoke else 5)
    report = run(factor, repeats, args.output, args.min_speedup)
    for name in report["failures"]:
        print(f"FAIL {name}: {report['gates'][name]['reason']}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
