"""Section 4.3 — the sibling/preceding/following approximation.

The paper: "by applying the above rewriting to XPathMark queries Q9 and
Q11, we were able to prune a document down to 7.5% of its original size".
We regenerate the experiment for every QP query that uses a rewritten
axis, reporting the size kept after pruning with the approximated-axis
projector and asserting it stays strongly selective despite the
approximation.

Emits ``benchmarks/results/axes.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.core.pipeline import analyze
from repro.projection.stats import compare_documents
from repro.projection.tree import prune_document
from repro.workloads.xpathmark import XPATHMARK_QUERIES
from repro.xpath.evaluator import XPathEvaluator

REWRITTEN_AXIS_QUERIES = {
    name: query
    for name, query in XPATHMARK_QUERIES.items()
    if any(axis in query for axis in ("following", "preceding"))
}


@pytest.mark.parametrize("name", sorted(REWRITTEN_AXIS_QUERIES))
def test_axis_rewritten_analysis(benchmark, bench_xmark, name):
    grammar, _, _ = bench_xmark
    query = REWRITTEN_AXIS_QUERIES[name]
    benchmark.group = "axes:analysis"
    result = benchmark(lambda: analyze(grammar, [query]))
    assert grammar.is_projector(result.projector)


def test_axes_report(benchmark, bench_xmark):
    grammar, document, interpretation = bench_xmark

    def build():
        rows = []
        for name, query in sorted(REWRITTEN_AXIS_QUERIES.items()):
            result = analyze(grammar, [query])
            pruned = prune_document(document, interpretation, result.projector)
            stats = compare_documents(document, pruned)
            # soundness double-check under the approximation
            original = XPathEvaluator(document).select_ids(query)
            after = XPathEvaluator(pruned).select_ids(query)
            assert original == after, name
            rows.append((name, stats.size_percent, len(original)))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [f"{'query':>6} {'size kept%':>11} {'answers':>8}"]
    for name, percent, count in rows:
        lines.append(f"{name:>6} {percent:>11.1f} {count:>8}")
    report = (
        "Section 4.3 axis approximation — pruning with rewritten "
        "sibling/preceding/following axes\n\n" + "\n".join(lines) + "\n"
    )
    path = write_report("axes.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    # The paper's claim: despite the approximation, pruning stays strong
    # (7.5% of original size for their Q9/Q11).  Our sibling queries keep
    # ~the open_auctions section; assert every rewritten-axis query stays
    # under 15% of the original size.
    assert all(percent < 15.0 for _, percent, _ in rows)
