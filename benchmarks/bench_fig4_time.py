"""Figure 4 — query processing time, original vs pruned document.

The paper's bar chart (56 MB document, Galax): per query, wall-clock of
running it on the original document and on its pruned version.  We emit
both series as a text table (``benchmarks/results/fig4_time.txt``) and
benchmark each run so pytest-benchmark records the distributions.

Shape claim reproduced: for every query, pruned-time <= original-time
(within noise), with large factors for selective queries.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TABLE1_SELECTION, write_report
from repro.engine.executor import QueryEngine

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats


@pytest.mark.parametrize("name", sorted(TABLE1_SELECTION))
def test_time_on_original(benchmark, prepared_queries, original_engine, name):
    prepared = prepared_queries[name]
    benchmark.group = f"fig4:{name}"
    benchmark.name = f"original[{name}]"
    benchmark(lambda: original_engine.run(prepared.query))


@pytest.mark.parametrize("name", sorted(TABLE1_SELECTION))
def test_time_on_pruned(benchmark, prepared_queries, name):
    prepared = prepared_queries[name]
    engine = QueryEngine(prepared.pruned_document)
    benchmark.group = f"fig4:{name}"
    benchmark.name = f"pruned[{name}]"
    benchmark(lambda: engine.run(prepared.query))


def test_fig4_report(benchmark, prepared_queries, original_engine):
    def build():
        rows = []
        for name in sorted(prepared_queries):
            prepared = prepared_queries[name]
            pruned_engine = QueryEngine(prepared.pruned_document)
            original = _stats.best_of(
                lambda: original_engine.run(prepared.query), 3
            )
            pruned = _stats.best_of(lambda: pruned_engine.run(prepared.query), 3)
            rows.append((name, original, pruned))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [f"{'query':>6} {'original s':>11} {'pruned s':>10} {'speedup':>8}"]
    for name, original, pruned in rows:
        lines.append(
            f"{name:>6} {original:>11.4f} {pruned:>10.4f} "
            f"{original / max(pruned, 1e-9):>7.1f}x"
        )
    report = "Figure 4 reproduction — query time, original vs pruned\n\n" + "\n".join(lines) + "\n"
    path = write_report("fig4_time.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    # Shape (mirrors the paper's Figure 4 spread, 1.0x-110x): queries that
    # scan broadly gain big factors; microsecond-scale direct-path queries
    # sit at ~1x (noise-dominated).  Assert the distribution, not the
    # noise: median >= ~1x, a solid fraction above 1.5x, heavy hitters
    # above 10x, and nothing substantially *slower*.
    speedups = sorted(original / max(pruned, 1e-9) for _, original, pruned in rows)
    assert speedups[len(speedups) // 2] > 0.9
    assert sum(1 for s in speedups if s > 1.5) >= len(speedups) // 4
    assert speedups[-1] > 10
    assert speedups[0] > 0.5
