"""Shared measurement library for the perf benches and the scale sweep.

Every benchmark in this directory reports through the same three
primitives so the JSON artifacts stay comparable across benches and
across commits:

- **quantiles** — :func:`percentile` is linearly interpolated (the
  "inclusive" method, matching ``statistics.quantiles``), replacing the
  old per-bench nearest-rank copies that misreported p95/p99 on small
  sample counts.
- **gate records** — :func:`gate` produces
  ``{"gate": "pass"|"fail"|"skip", "reason": ...}`` so trajectory
  tooling never has to guess whether a field is a bool, a string, or a
  skip marker.
- **provenance** — :func:`environment` stamps every report with the
  commit, interpreter, and cpu count the numbers were produced on.

Import works both ways the repo runs benchmarks: as scripts
(``python benchmarks/bench_x.py`` → ``import _stats``) and under pytest
(``from benchmarks import _stats``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs

__all__ = [
    "append_jsonl",
    "best_of",
    "environment",
    "failures",
    "gate",
    "median",
    "percentile",
    "read_jsonl",
    "regression_gate",
    "repeat_seconds",
    "summarize_seconds",
    "time_call",
    "write_report",
]


# ---------------------------------------------------------------------------
# Quantiles


def percentile(samples: Sequence[float], q: float) -> float:
    """Linearly-interpolated quantile of ``samples`` at fraction ``q``.

    Delegates to :func:`repro.obs.quantile` so the benches and the
    service's native histograms share one canonical implementation.
    """
    return obs.quantile(samples, q)


def median(samples: Sequence[float]) -> float:
    return obs.quantile(samples, 0.5)


def summarize_seconds(samples: Sequence[float]) -> dict[str, Any]:
    """Count / mean / min / max / p50 / p95 / p99 summary of a latency
    sample list (seconds)."""
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
        "p50": obs.quantile(samples, 0.50),
        "p95": obs.quantile(samples, 0.95),
        "p99": obs.quantile(samples, 0.99),
    }


# ---------------------------------------------------------------------------
# Gate records


def gate(ok: bool | None, reason: str) -> dict[str, str]:
    """Machine-readable gate record.

    ``ok=None`` means the check could not run here (e.g. a speedup gate
    on a 1-cpu box) and records a skip rather than an ambiguous string.
    """
    if ok is None:
        status = "skip"
    else:
        status = "pass" if ok else "fail"
    return {"gate": status, "reason": reason}


def failures(gates: dict[str, dict[str, str]]) -> list[str]:
    """Names of gates that failed (skips do not fail a run)."""
    return sorted(name for name, record in gates.items() if record["gate"] == "fail")


# ---------------------------------------------------------------------------
# Provenance


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def environment(**extra: Any) -> dict[str, Any]:
    """Provenance block stamped into every report: where and on what the
    numbers were produced."""
    info: dict[str, Any] = {
        "commit": _git_commit(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    info.update(extra)
    return info


# ---------------------------------------------------------------------------
# Timing helpers


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once; return ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def repeat_seconds(fn: Callable[[], Any], repeats: int) -> list[float]:
    """Elapsed seconds for ``repeats`` calls of ``fn``."""
    samples: list[float] = []
    for _ in range(repeats):
        elapsed, _result = time_call(fn)
        samples.append(elapsed)
    return samples


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Fastest of ``repeats`` timed calls (classic min-of-N timing)."""
    return min(repeat_seconds(fn, repeats))


# ---------------------------------------------------------------------------
# Report I/O


def write_report(report: dict[str, Any], output_path: str | Path) -> Path:
    """Write a benchmark report as pretty JSON, creating parents."""
    path = Path(output_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def append_jsonl(record: dict[str, Any], path: str | Path) -> None:
    """Append one record to a JSONL trajectory file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as sink:
        sink.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL trajectory file; missing file reads as empty."""
    target = Path(path)
    if not target.exists():
        return []
    records: list[dict[str, Any]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def regression_gate(
    current_p50: float,
    history: Sequence[dict[str, Any]],
    key: str = "p50",
    tolerance_percent: float = 25.0,
    window: int = 5,
) -> dict[str, str]:
    """Gate the current p50 against the recent trajectory.

    Compares against the median of up to ``window`` prior entries; a
    regression beyond ``tolerance_percent`` fails. With fewer than two
    usable prior points the gate is a *skip*, never a pass — a single
    point is no baseline (its noise would gate the next run), so early
    runs seed the trajectory and say so explicitly.
    """
    priors = [
        float(entry[key])
        for entry in history[-window:]
        if isinstance(entry.get(key), (int, float)) and entry[key] > 0
    ]
    if len(priors) < 2:
        return gate(
            None,
            f"only {len(priors)} prior trajectory "
            f"entr{'y' if len(priors) == 1 else 'ies'} (need 2 to baseline)",
        )
    baseline = median(priors)
    limit = baseline * (1.0 + tolerance_percent / 100.0)
    ok = current_p50 <= limit
    return gate(
        ok,
        f"p50 {current_p50:.6f}s vs baseline {baseline:.6f}s "
        f"(+{tolerance_percent:.0f}% limit {limit:.6f}s, window {len(priors)})",
    )
