"""Shared benchmark fixtures.

The document scale is controlled by ``REPRO_BENCH_FACTOR`` (default 0.004
≈ 0.3 MB serialised; the paper used a 56 MB document — ratios are
scale-invariant, see DESIGN.md).  Reports are written to
``benchmarks/results/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.pipeline import analyze
from repro.dtd.validator import validate
from repro.engine.executor import QueryEngine
from repro.projection.stats import compare_documents
from repro.projection.tree import prune_document
from repro.workloads.xmark import XMARK_QUERIES, generate_document, xmark_grammar
from repro.workloads.xpathmark import XPATHMARK_QUERIES

BENCH_FACTOR = float(os.environ.get("REPRO_BENCH_FACTOR", "0.004"))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The query selection reported in the paper's Table 1 / Figures 4-5.
TABLE1_SELECTION: dict[str, str] = {
    **{name: XMARK_QUERIES[name] for name in
       ("QM01", "QM02", "QM03", "QM06", "QM07", "QM08", "QM13", "QM14", "QM18", "QM20")},
    **{name: XPATHMARK_QUERIES[name] for name in sorted(XPATHMARK_QUERIES)},
}


def is_xquery(name: str) -> bool:
    return name.startswith("QM")


@dataclass(slots=True)
class PreparedQuery:
    """Everything Table 1 / Figures 4-5 need for one query."""

    name: str
    query: str
    projector: frozenset
    pruned_document: object
    size_percent: float  # pruned bytes / original bytes * 100
    node_percent: float
    analysis_seconds: float


@pytest.fixture(scope="session")
def bench_xmark():
    grammar = xmark_grammar()
    document = generate_document(BENCH_FACTOR, seed=99)
    interpretation = validate(document, grammar)
    return grammar, document, interpretation


@pytest.fixture(scope="session")
def prepared_queries(bench_xmark) -> dict[str, PreparedQuery]:
    grammar, document, interpretation = bench_xmark
    prepared: dict[str, PreparedQuery] = {}
    for name, query in TABLE1_SELECTION.items():
        if is_xquery(name):
            result = analyze(grammar, query, language="xquery")
        else:
            result = analyze(grammar, [query])
        pruned = prune_document(document, interpretation, result.projector)
        stats = compare_documents(document, pruned)
        prepared[name] = PreparedQuery(
            name=name,
            query=query,
            projector=result.projector,
            pruned_document=pruned,
            size_percent=stats.size_percent,
            node_percent=100.0 * stats.node_ratio,
            analysis_seconds=result.analysis_seconds,
        )
    return prepared


@pytest.fixture(scope="session")
def original_engine(bench_xmark):
    _, document, _ = bench_xmark
    return QueryEngine(document)


def write_report(filename: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
