"""Figure 5 — main memory used to process each query, original vs pruned.

The paper's companion chart to Figure 4.  Memory here is the engine
model's document bytes plus evaluation working set (see
``repro.engine.metrics``).  Emits ``benchmarks/results/fig5_memory.txt``.

Shape claims reproduced:

* memory gains track (and often exceed) size gains;
* the mixed-content query QM14 shows the paper's signature effect: the
  pruned document is a large fraction of the original *bytes* but costs a
  disproportionately smaller amount of *memory* (node-dense sections were
  pruned, text-heavy ones kept).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TABLE1_SELECTION, write_report
from repro.engine.executor import QueryEngine


@pytest.mark.parametrize("name", sorted(TABLE1_SELECTION))
def test_memory_accounting(benchmark, prepared_queries, original_engine, name):
    """Benchmarks the memory-model accounting pass itself per query (the
    measured quantity of Figure 5)."""
    prepared = prepared_queries[name]
    benchmark.group = "fig5:model-accounting"

    def account():
        engine = QueryEngine(prepared.pruned_document)
        report = engine.run(prepared.query)
        return report.total_bytes

    total = benchmark(account)
    assert total <= original_engine.document_bytes * 1.5


def test_fig5_report(benchmark, bench_xmark, prepared_queries, original_engine):
    grammar, document, _ = bench_xmark

    def build():
        rows = []
        for name in sorted(prepared_queries):
            prepared = prepared_queries[name]
            pruned_engine = QueryEngine(prepared.pruned_document)
            original_report = original_engine.run(prepared.query)
            pruned_report = pruned_engine.run(prepared.query)
            rows.append(
                (
                    name,
                    original_report.total_bytes,
                    pruned_report.total_bytes,
                    prepared.size_percent,
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [
        f"{'query':>6} {'orig MB':>9} {'pruned MB':>10} {'mem gain':>9} {'size kept%':>11}"
    ]
    for name, original, pruned, size_percent in rows:
        lines.append(
            f"{name:>6} {original / 1e6:>9.2f} {pruned / 1e6:>10.2f} "
            f"{original / max(pruned, 1):>8.1f}x {size_percent:>11.1f}"
        )
    report = (
        "Figure 5 reproduction — engine memory, original vs pruned\n\n"
        + "\n".join(lines)
        + "\n"
    )
    path = write_report("fig5_memory.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    by_name = {row[0]: row for row in rows}
    # The QM14 phenomenon: size kept is a large fraction, but memory gain
    # exceeds what the size ratio alone would give.
    _, qm14_original, qm14_pruned, qm14_size = by_name["QM14"]
    memory_kept_percent = 100.0 * qm14_pruned / qm14_original
    assert qm14_size > 25.0  # a large chunk of the bytes is kept...
    assert memory_kept_percent < qm14_size  # ...but memory shrinks more.
    # Memory gain is at least 1 for every query.
    assert all(original >= pruned * 0.99 for _, original, pruned, _ in rows)
