"""Hot-path benchmark: fused fast path vs event pipeline, plus the
projector cache under a repeated-query workload.

Standalone script (not pytest-benchmark — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--smoke]
        [--factor F] [--repeats N] [--output PATH]

Measures, on an XMark document:

* event-pipeline vs fused-fast-path prune wall time per query
  (byte-identical output is *asserted*, not assumed);
* the throughput ratio (the PR's target: >= 1.5x on selective
  projectors);
* projector-cache hit rates for a workload that repeats each query;
* with ``--smoke``: tracing-disabled vs raw-pruner and tracing-enabled
  prune times — the :mod:`repro.obs` no-op default must stay within
  ``--max-obs-overhead`` (default 5%) of the uninstrumented hot loop.

Writes machine-readable ``benchmarks/results/BENCH_hotpath.json`` and a
JSONL gauge stream (the :class:`repro.obs.JsonlSink` record format) next
to it in ``BENCH_hotpath.jsonl``.
"""

from __future__ import annotations

import argparse
import io
import os
import sys
import tempfile
import time

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats


DEFAULT_QUERIES = {
    "QP1-regions": "/site/regions",
    "QP2-bidder-increase": "/site/open_auctions/open_auction/bidder/increase",
    "QP3-person-name": "//person/name",
    "QP4-keyword": "//keyword",
    "QM06-items": "for $b in //site/regions return count($b//item)",
}


def _time_prune(xml: str, grammar, projector, fast: bool, repeats: int):
    from repro.api import prune

    samples = []
    output = None
    for _ in range(repeats):
        sink = io.StringIO()
        started = time.perf_counter()
        prune(io.StringIO(xml), grammar, projector, out=sink, fast=fast)
        samples.append(time.perf_counter() - started)
        output = sink.getvalue()
    return _stats.median(samples), output


def _obs_overhead(xml: str, grammar, projector, repeats: int) -> dict:
    """Time the fused prune three ways: raw ``FastPruner.write`` (no
    facade, no spans), the facade with tracing disabled (the default), and
    the facade with a live JSONL tracer.  The disabled-vs-raw delta is the
    cost of the instrumentation itself and must stay within a few percent.
    """
    from repro import obs
    from repro.api import prune
    from repro.projection.fastpath import FastPruner
    from repro.projection.stats import PruneStats

    def one_raw():
        sink = io.StringIO()
        started = time.perf_counter()
        FastPruner(grammar, frozenset(projector), stats=PruneStats()).write(
            io.StringIO(xml), sink
        )
        return time.perf_counter() - started

    def one_facade():
        sink = io.StringIO()
        started = time.perf_counter()
        prune(io.StringIO(xml), grammar, projector, out=sink)
        return time.perf_counter() - started

    # Warm both variants, then interleave samples so clock drift and cache
    # effects hit raw and facade equally; minimum cancels scheduler noise.
    one_raw(), one_facade()
    raw_samples, disabled_samples = [], []
    for _ in range(max(repeats, 5)):
        raw_samples.append(one_raw())
        disabled_samples.append(one_facade())
    raw_seconds = min(raw_samples)
    disabled_seconds = min(disabled_samples)
    obs.configure(obs.JsonlSink(io.StringIO()))
    try:
        enabled_seconds = min(one_facade() for _ in range(max(repeats, 5)))
    finally:
        obs.disable()
    overhead = (disabled_seconds / raw_seconds - 1.0) * 100 if raw_seconds else 0.0
    enabled_overhead = (
        (enabled_seconds / raw_seconds - 1.0) * 100 if raw_seconds else 0.0
    )
    return {
        "raw_seconds": round(raw_seconds, 6),
        "disabled_seconds": round(disabled_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "disabled_overhead_percent": round(overhead, 2),
        "enabled_overhead_percent": round(enabled_overhead, 2),
    }


def _static_short_circuit(xml: str, grammar, repeats: int) -> dict:
    """Time a provably-empty workload (every query UNSAT under the DTD)
    against the full prune it replaces.  The satisfiability pre-pass
    answers from the grammar alone — the document is never opened — so
    the short-circuit must land orders of magnitude under the full prune.
    Both variants run from the same on-disk file so the comparison is
    parse-vs-no-parse, not string-vs-file plumbing.
    """
    from repro.api import prune
    from repro.core.pipeline import analyze

    analysis = analyze(grammar, ["/site/people/item"])
    assert analysis.provably_empty, "smoke workload is meant to be provably empty"
    fd, xml_path = tempfile.mkstemp(suffix=".xml", prefix="bench_hotpath_sc_")
    os.close(fd)
    try:
        with open(xml_path, "w", encoding="utf-8") as handle:
            handle.write(xml)
        expected = prune(xml_path, grammar, analysis.projector).text
        full_samples, short_samples = [], []
        for _ in range(max(repeats, 3)):
            started = time.perf_counter()
            full = prune(xml_path, grammar, analysis.projector).text
            full_samples.append(time.perf_counter() - started)
            started = time.perf_counter()
            short = prune(xml_path, grammar, analysis).text
            short_samples.append(time.perf_counter() - started)
            assert short == full == expected, (
                "short-circuited output differs from the full prune"
            )
    finally:
        os.unlink(xml_path)
    full_seconds = _stats.median(full_samples)
    short_seconds = _stats.median(short_samples)
    fraction = (short_seconds / full_seconds * 100) if full_seconds else 0.0
    return {
        "full_prune_seconds": round(full_seconds, 6),
        "short_circuit_seconds": round(short_seconds, 6),
        "fraction_percent": round(fraction, 3),
    }


def _ledger_dedup(xml: str, grammar, projector, repeats: int) -> dict:
    """Time a ledger dedup hit against the full prune it replaces.  The
    first governed run records the attestation; every repeat is served
    from the content-addressed store — byte-identical by construction
    (``fetch`` re-hashes the payload before serving) — so the hit must
    cost a small fraction of the prune it saves.  Both variants run from
    the same on-disk file so the comparison is serve-vs-prune, not
    plumbing.
    """
    import shutil

    from repro.api import prune
    from repro.ledger import Ledger

    fd, xml_path = tempfile.mkstemp(suffix=".xml", prefix="bench_hotpath_led_")
    os.close(fd)
    ledger_dir = tempfile.mkdtemp(prefix="bench_hotpath_ledger_")
    try:
        with open(xml_path, "w", encoding="utf-8") as handle:
            handle.write(xml)
        fresh = prune(xml_path, grammar, projector).text
        with Ledger(os.path.join(ledger_dir, "ledger.jsonl")) as ledger:
            recorded = prune(xml_path, grammar, projector, ledger=ledger)
            assert ledger.appended == 1 and recorded.text == fresh
            full_samples, hit_samples = [], []
            for _ in range(max(repeats, 3)):
                started = time.perf_counter()
                full = prune(xml_path, grammar, projector).text
                full_samples.append(time.perf_counter() - started)
                started = time.perf_counter()
                hit = prune(xml_path, grammar, projector, ledger=ledger)
                hit_samples.append(time.perf_counter() - started)
                assert hit.text == full == fresh, (
                    "ledger dedup hit differs from the fresh prune"
                )
            assert ledger.hits == len(hit_samples) and len(ledger) == 1
    finally:
        os.unlink(xml_path)
        shutil.rmtree(ledger_dir, ignore_errors=True)
    full_seconds = _stats.median(full_samples)
    hit_seconds = _stats.median(hit_samples)
    fraction = (hit_seconds / full_seconds * 100) if full_seconds else 0.0
    return {
        "full_prune_seconds": round(full_seconds, 6),
        "dedup_hit_seconds": round(hit_seconds, 6),
        "fraction_percent": round(fraction, 3),
    }


def run(factor: float, repeats: int, output_path: str, min_speedup: float,
        smoke: bool = False, max_obs_overhead: float = 5.0) -> dict:
    from repro.core.cache import ProjectorCache
    from repro.workloads.xmark import xmark_grammar
    from repro.workloads.xmark.generator import generate_file

    grammar = xmark_grammar()
    print(f"generating XMark document (factor {factor}) ...", flush=True)
    # Stream to disk (never builds the document tree), then load just the
    # markup text for the repeated in-memory timing runs.
    fd, xml_path = tempfile.mkstemp(suffix=".xml", prefix="bench_hotpath_")
    os.close(fd)
    try:
        generate_file(xml_path, factor, seed=99)
        with open(xml_path, encoding="utf-8") as handle:
            handle.readline()  # the prune paths under test emit no declaration
            xml = handle.read()
    finally:
        os.unlink(xml_path)
    megabytes = len(xml.encode("utf-8")) / 1e6

    cache = ProjectorCache()
    queries: list[dict] = []
    ratios: list[float] = []
    for name, query in DEFAULT_QUERIES.items():
        projector = cache.projector_for_query(grammar, query)
        slow_seconds, slow_output = _time_prune(xml, grammar, projector, False, repeats)
        fast_seconds, fast_output = _time_prune(xml, grammar, projector, True, repeats)
        assert fast_output == slow_output, (
            f"fast path output differs from event pipeline for {name}"
        )
        ratio = slow_seconds / fast_seconds if fast_seconds else float("inf")
        ratios.append(ratio)
        queries.append({
            "name": name,
            "query": query,
            "projector_size": len(projector),
            "output_bytes": len(fast_output.encode("utf-8")),
            "event_pipeline_seconds": round(slow_seconds, 6),
            "fast_path_seconds": round(fast_seconds, 6),
            "speedup": round(ratio, 3),
            "fast_mb_per_s": round(megabytes / fast_seconds, 2) if fast_seconds else None,
            "byte_identical": True,
        })
        print(f"  {name:22s} event {slow_seconds * 1000:8.1f} ms   "
              f"fast {fast_seconds * 1000:8.1f} ms   {ratio:5.2f}x", flush=True)

    # Repeated-query workload: second round must be served from the cache.
    workload = list(DEFAULT_QUERIES.values())
    cache.analyze(grammar, workload)
    hits_before = cache.stats.hits
    cache.analyze(grammar, workload)
    workload_hits = cache.stats.hits - hits_before

    obs_overhead = None
    short_circuit = None
    ledger_dedup = None
    if smoke:
        smoke_query = DEFAULT_QUERIES["QP3-person-name"]
        smoke_projector = cache.projector_for_query(grammar, smoke_query)
        obs_overhead = _obs_overhead(xml, grammar, smoke_projector, repeats)
        print(f"  obs overhead: raw {obs_overhead['raw_seconds'] * 1000:.1f} ms, "
              f"disabled {obs_overhead['disabled_seconds'] * 1000:.1f} ms "
              f"({obs_overhead['disabled_overhead_percent']:+.1f}%), "
              f"enabled {obs_overhead['enabled_seconds'] * 1000:.1f} ms "
              f"({obs_overhead['enabled_overhead_percent']:+.1f}%)", flush=True)
        short_circuit = _static_short_circuit(xml, grammar, repeats)
        print(f"  UNSAT short-circuit: "
              f"{short_circuit['short_circuit_seconds'] * 1000:.2f} ms vs full "
              f"{short_circuit['full_prune_seconds'] * 1000:.1f} ms "
              f"({short_circuit['fraction_percent']:.2f}%)", flush=True)
        ledger_dedup = _ledger_dedup(xml, grammar, smoke_projector, repeats)
        print(f"  ledger dedup hit: "
              f"{ledger_dedup['dedup_hit_seconds'] * 1000:.2f} ms vs full "
              f"{ledger_dedup['full_prune_seconds'] * 1000:.1f} ms "
              f"({ledger_dedup['fraction_percent']:.2f}%)", flush=True)

    best = max(ratios)
    gates = {
        "speedup": _stats.gate(
            best >= min_speedup,
            f"best fast-path speedup {best:.2f}x vs the {min_speedup}x target",
        ),
        "cache_repeat_hits": _stats.gate(
            workload_hits == len(workload),
            f"repeated workload hit the cache {workload_hits}/{len(workload)} times",
        ),
        "obs_overhead": _stats.gate(
            None if obs_overhead is None
            else obs_overhead["disabled_overhead_percent"] <= max_obs_overhead,
            "not measured (run with --smoke)" if obs_overhead is None else (
                f"tracing-disabled prune overhead "
                f"{obs_overhead['disabled_overhead_percent']:.1f}% vs the "
                f"{max_obs_overhead:.1f}% cap"
            ),
        ),
        "static_short_circuit": _stats.gate(
            None if short_circuit is None
            else short_circuit["fraction_percent"] < 1.0,
            "not measured (run with --smoke)" if short_circuit is None else (
                f"provably-empty workload answered in "
                f"{short_circuit['short_circuit_seconds'] * 1000:.2f} ms = "
                f"{short_circuit['fraction_percent']:.2f}% of the "
                f"{short_circuit['full_prune_seconds'] * 1000:.1f} ms full "
                f"prune (cap 1%)"
            ),
        ),
        "ledger_dedup": _stats.gate(
            None if ledger_dedup is None
            else ledger_dedup["fraction_percent"] < 5.0,
            "not measured (run with --smoke)" if ledger_dedup is None else (
                f"recorded workload served in "
                f"{ledger_dedup['dedup_hit_seconds'] * 1000:.2f} ms = "
                f"{ledger_dedup['fraction_percent']:.2f}% of the "
                f"{ledger_dedup['full_prune_seconds'] * 1000:.1f} ms full "
                f"prune (cap 5%)"
            ),
        ),
    }
    report = {
        "benchmark": "hotpath",
        "environment": _stats.environment(xmark_factor=factor),
        "document_megabytes": round(megabytes, 3),
        "xmark_factor": factor,
        "repeats": repeats,
        "queries": queries,
        "best_speedup": round(best, 3),
        "median_speedup": round(_stats.median(ratios), 3),
        "min_speedup_required": min_speedup,
        "cache": {
            **cache.stats.as_dict(),
            "repeat_round_hits": workload_hits,
            "repeat_round_expected": len(workload),
        },
        "gates": gates,
    }
    if obs_overhead is not None:
        report["obs_overhead"] = obs_overhead
    if short_circuit is not None:
        report["static_short_circuit"] = short_circuit
    if ledger_dedup is not None:
        report["ledger_dedup"] = ledger_dedup
    report["failures"] = _stats.failures(gates)

    _stats.write_report(report, output_path)
    _write_gauges(report, os.path.splitext(output_path)[0] + ".jsonl")
    print(f"\nbest speedup {best:.2f}x, median {report['median_speedup']:.2f}x "
          f"(target >= {min_speedup}x); cache repeat-round hits "
          f"{workload_hits}/{len(workload)}")
    print(f"wrote {output_path}")
    return report


def _write_gauges(report: dict, path: str) -> None:
    """Re-emit the headline numbers as obs gauge records so traces and
    benchmark results share one format."""
    from repro import obs

    sink = obs.JsonlSink(path)
    try:
        flat = {
            "bench.hotpath.document_megabytes": report["document_megabytes"],
            "bench.hotpath.best_speedup": report["best_speedup"],
            "bench.hotpath.median_speedup": report["median_speedup"],
            "bench.hotpath.cache_repeat_hits": report["cache"]["repeat_round_hits"],
        }
        for query in report["queries"]:
            flat[f"bench.hotpath.{query['name']}.fast_seconds"] = query["fast_path_seconds"]
            flat[f"bench.hotpath.{query['name']}.event_seconds"] = query["event_pipeline_seconds"]
        for key, value in report.get("obs_overhead", {}).items():
            flat[f"bench.hotpath.obs.{key}"] = value
        for key, value in report.get("static_short_circuit", {}).items():
            flat[f"bench.hotpath.static.{key}"] = value
        for key, value in report.get("ledger_dedup", {}).items():
            flat[f"bench.hotpath.ledger.{key}"] = value
        for name, value in flat.items():
            sink.record({"type": "gauge", "name": name, "value": value})
    finally:
        sink.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=float, default=None,
                        help="XMark scale factor (default 0.02; --quick uses 0.004)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per configuration (median is reported)")
    parser.add_argument("--quick", action="store_true",
                        help="small document + fewer repeats (CI smoke mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="--quick plus the tracing-overhead gate")
    parser.add_argument("--max-obs-overhead", type=float, default=5.0,
                        help="fail if the tracing-disabled prune overhead exceeds this percent")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if the best fast-path speedup is below this")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "results", "BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    quick = args.quick or args.smoke
    factor = args.factor if args.factor is not None else (0.004 if quick else 0.02)
    repeats = args.repeats if args.repeats is not None else (3 if quick else 5)
    report = run(factor, repeats, args.output, args.min_speedup,
                 smoke=args.smoke, max_obs_overhead=args.max_obs_overhead)
    for name in report["failures"]:
        print(f"FAIL {name}: {report['gates'][name]['reason']}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
