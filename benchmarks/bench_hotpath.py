"""Hot-path benchmark: fused fast path vs event pipeline, plus the
projector cache under a repeated-query workload.

Standalone script (not pytest-benchmark — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]
        [--factor F] [--repeats N] [--output PATH]

Measures, on an XMark document:

* event-pipeline vs fused-fast-path prune wall time per query
  (byte-identical output is *asserted*, not assumed);
* the throughput ratio (the PR's target: >= 1.5x on selective
  projectors);
* projector-cache hit rates for a workload that repeats each query.

Writes machine-readable ``benchmarks/results/BENCH_hotpath.json``.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time


DEFAULT_QUERIES = {
    "QP1-regions": "/site/regions",
    "QP2-bidder-increase": "/site/open_auctions/open_auction/bidder/increase",
    "QP3-person-name": "//person/name",
    "QP4-keyword": "//keyword",
    "QM06-items": "for $b in //site/regions return count($b//item)",
}


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def _time_prune(xml: str, grammar, projector, fast: bool, repeats: int):
    from repro.projection.streaming import prune_stream

    samples = []
    output = None
    for _ in range(repeats):
        sink = io.StringIO()
        started = time.perf_counter()
        prune_stream(io.StringIO(xml), sink, grammar, projector, fast=fast)
        samples.append(time.perf_counter() - started)
        output = sink.getvalue()
    return _median(samples), output


def run(factor: float, repeats: int, output_path: str, min_speedup: float) -> dict:
    from repro.core.cache import ProjectorCache
    from repro.workloads.xmark import generate_document, xmark_grammar
    from repro.xmltree.serializer import serialize

    grammar = xmark_grammar()
    print(f"generating XMark document (factor {factor}) ...", flush=True)
    xml = serialize(generate_document(factor, seed=99))
    megabytes = len(xml.encode("utf-8")) / 1e6

    cache = ProjectorCache()
    queries: list[dict] = []
    ratios: list[float] = []
    for name, query in DEFAULT_QUERIES.items():
        projector = cache.projector_for_query(grammar, query)
        slow_seconds, slow_output = _time_prune(xml, grammar, projector, False, repeats)
        fast_seconds, fast_output = _time_prune(xml, grammar, projector, True, repeats)
        assert fast_output == slow_output, (
            f"fast path output differs from event pipeline for {name}"
        )
        ratio = slow_seconds / fast_seconds if fast_seconds else float("inf")
        ratios.append(ratio)
        queries.append({
            "name": name,
            "query": query,
            "projector_size": len(projector),
            "output_bytes": len(fast_output.encode("utf-8")),
            "event_pipeline_seconds": round(slow_seconds, 6),
            "fast_path_seconds": round(fast_seconds, 6),
            "speedup": round(ratio, 3),
            "fast_mb_per_s": round(megabytes / fast_seconds, 2) if fast_seconds else None,
            "byte_identical": True,
        })
        print(f"  {name:22s} event {slow_seconds * 1000:8.1f} ms   "
              f"fast {fast_seconds * 1000:8.1f} ms   {ratio:5.2f}x", flush=True)

    # Repeated-query workload: second round must be served from the cache.
    workload = list(DEFAULT_QUERIES.values())
    cache.analyze(grammar, workload)
    hits_before = cache.stats.hits
    cache.analyze(grammar, workload)
    workload_hits = cache.stats.hits - hits_before

    best = max(ratios)
    report = {
        "benchmark": "hotpath",
        "document_megabytes": round(megabytes, 3),
        "xmark_factor": factor,
        "repeats": repeats,
        "queries": queries,
        "best_speedup": round(best, 3),
        "median_speedup": round(_median(ratios), 3),
        "min_speedup_required": min_speedup,
        "cache": {
            **cache.stats.as_dict(),
            "repeat_round_hits": workload_hits,
            "repeat_round_expected": len(workload),
        },
    }

    os.makedirs(os.path.dirname(output_path), exist_ok=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nbest speedup {best:.2f}x, median {report['median_speedup']:.2f}x "
          f"(target >= {min_speedup}x); cache repeat-round hits "
          f"{workload_hits}/{len(workload)}")
    print(f"wrote {output_path}")

    failures = []
    if best < min_speedup:
        failures.append(
            f"fast path best speedup {best:.2f}x is below the {min_speedup}x target"
        )
    if workload_hits != len(workload):
        failures.append(
            f"repeated workload hit the cache only {workload_hits}/{len(workload)} times"
        )
    report["failures"] = failures
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=float, default=None,
                        help="XMark scale factor (default 0.02; --quick uses 0.004)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per configuration (median is reported)")
    parser.add_argument("--quick", action="store_true",
                        help="small document + fewer repeats (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if the best fast-path speedup is below this")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "results", "BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (0.004 if args.quick else 0.02)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 5)
    report = run(factor, repeats, args.output, args.min_speedup)
    for failure in report["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
