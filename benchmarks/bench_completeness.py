"""Empirical completeness (Theorems 4.4/4.5/4.7) at benchmark scale.

Two experiments:

* **soundness sweep** — every Table-1 query answers identically on the
  original and pruned document (Theorem 4.5 end-to-end; this is also the
  correctness gate for all other benchmarks);
* **minimality probe** — on a completeness-class DTD, for each inferred
  projector no name is removable without changing some answer (Theorem
  4.7); we report the fraction of removable names (expected: 0).

Emits ``benchmarks/results/completeness.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TABLE1_SELECTION, is_xquery, write_report
from repro.core.projector import infer_projector
from repro.dtd.grammar import grammar_from_text
from repro.dtd.properties import analyze_grammar
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.randomgen import random_valid_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.xpathl import evaluate_pathl, parse_pathl
from repro.xquery.evaluator import XQueryEvaluator

CLEAN_DTD = """
<!ELEMENT store (dept*)>
<!ELEMENT dept (dname, (shelf)*)>
<!ELEMENT shelf (slabel?, (tin | jar)*)>
<!ELEMENT tin (tlabel)>
<!ELEMENT jar (jlabel, note?)>
<!ELEMENT dname (#PCDATA)>
<!ELEMENT slabel (#PCDATA)>
<!ELEMENT tlabel (#PCDATA)>
<!ELEMENT jlabel (#PCDATA)>
<!ELEMENT note (#PCDATA)>
"""

STRONGLY_SPECIFIED = [
    "child::dept/child::shelf/child::tin",
    "descendant::jar/child::jlabel",
    "descendant::node()/self::tin/parent::node()",
    "descendant::node()[child::jlabel]/self::jar",
    "descendant::tin/ancestor::node()/self::dept",
]


def test_soundness_sweep(benchmark, bench_xmark, prepared_queries):
    grammar, document, _ = bench_xmark

    def sweep():
        mismatches = []
        for name, prepared in prepared_queries.items():
            if is_xquery(name):
                original = XQueryEvaluator(document).evaluate_serialized(prepared.query)
                after = XQueryEvaluator(prepared.pruned_document).evaluate_serialized(prepared.query)
            else:
                original = XPathEvaluator(document).select_ids(prepared.query)
                after = XPathEvaluator(prepared.pruned_document).select_ids(prepared.query)
            if original != after:
                mismatches.append(name)
        return mismatches

    mismatches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert mismatches == []


def test_minimality_probe(benchmark):
    grammar = grammar_from_text(CLEAN_DTD, "store")
    assert analyze_grammar(grammar).completeness_class

    def probe():
        removable = []
        total = 0
        for text in STRONGLY_SPECIFIED:
            pathl = parse_pathl(text)
            projector = infer_projector(grammar, pathl)
            for name in sorted(projector - {grammar.root}):
                total += 1
                reduced = frozenset(projector - ({name} | grammar.descendants_of(name)))
                if not _witness_exists(grammar, pathl, reduced):
                    removable.append((text, name))
        return total, removable

    total, removable = benchmark.pedantic(probe, rounds=1, iterations=1)
    report = (
        "Theorem 4.7 minimality probe — completeness-class DTD, "
        "strongly-specified queries\n\n"
        f"projector names probed: {total}\n"
        f"removable (completeness violations): {len(removable)}\n"
        + "".join(f"  {text}: {name}\n" for text, name in removable)
    )
    path = write_report("completeness.txt", report)
    print("\n" + report + f"\n[written to {path}]")
    assert removable == []


def _witness_exists(grammar, pathl, reduced, samples=60) -> bool:
    for seed in range(samples):
        document = random_valid_document(grammar, seed)
        interpretation = validate(document, grammar)
        original = sorted(n.node_id for n in evaluate_pathl(document, pathl))
        pruned = prune_document(document, interpretation, reduced | {grammar.root})
        after = sorted(n.node_id for n in evaluate_pathl(pruned, pathl))
        if original != after:
            return True
    return False
