"""Baseline comparison — type-based pruning vs Marian & Siméon [14].

Regenerates the paper's comparative claims (Sections 1.1, 5, 6):

* type-based pruning is never less precise on the common workload;
* the path-based loader's cost explodes with ``//`` occurrences (QM07's
  three ``//`` steps made its *pruning* cost exceed query cost in [14]);
* ``descendant-or-self::node + condition`` queries annul path-based
  pruning entirely, while the predicate survives the type-based pipeline.

Emits ``benchmarks/results/baseline.txt``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.baselines.marian_simeon import baseline_paths_for_query, prune_with_baseline
from repro.core.pipeline import analyze
from repro.projection.tree import prune_document
from repro.workloads.xmark import XMARK_QUERIES

DEGENERATE = (
    "for $y in /site//node() return "
    "if ($y/author = 'nobody') then <r>{$y}</r> else ()"
)

CASES = {
    "QM01": XMARK_QUERIES["QM01"],
    "QM06": XMARK_QUERIES["QM06"],
    "QM07": XMARK_QUERIES["QM07"],
    "QM14": XMARK_QUERIES["QM14"],
    "DEGEN": DEGENERATE,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_baseline_pruning_time(benchmark, bench_xmark, name):
    _, document, _ = bench_xmark
    paths = baseline_paths_for_query(CASES[name])
    benchmark.group = "baseline:prune-time"
    benchmark.name = f"marian-simeon[{name}]"
    benchmark.pedantic(lambda: prune_with_baseline(document, paths), rounds=3, iterations=1)


@pytest.mark.parametrize("name", sorted(CASES))
def test_typebased_pruning_time(benchmark, bench_xmark, name):
    grammar, document, interpretation = bench_xmark
    projector = analyze(grammar, CASES[name], language="xquery").projector
    benchmark.group = "baseline:prune-time"
    benchmark.name = f"type-based[{name}]"
    benchmark.pedantic(
        lambda: prune_document(document, interpretation, projector),
        rounds=3,
        iterations=1,
    )


def test_baseline_report(benchmark, bench_xmark):
    grammar, document, interpretation = bench_xmark

    def build():
        rows = []
        for name, query in CASES.items():
            started = time.perf_counter()
            projector = analyze(grammar, query, language="xquery").projector
            ours = prune_document(document, interpretation, projector)
            ours_seconds = time.perf_counter() - started

            started = time.perf_counter()
            baseline = prune_with_baseline(document, baseline_paths_for_query(query))
            baseline_seconds = time.perf_counter() - started
            rows.append(
                {
                    "name": name,
                    "ours_keep": ours.size() / document.size(),
                    "base_keep": baseline.document.size() / document.size(),
                    "speculative": baseline.metrics.speculative_nodes,
                    "ours_seconds": ours_seconds,
                    "base_seconds": baseline_seconds,
                }
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [
        f"{'case':>6} {'keep(type)':>11} {'keep(path)':>11} {'specul.nodes':>13} "
        f"{'t type s':>9} {'t path s':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:>6} {row['ours_keep']:>11.1%} {row['base_keep']:>11.1%} "
            f"{row['speculative']:>13} {row['ours_seconds']:>9.3f} {row['base_seconds']:>9.3f}"
        )
    report = (
        "Baseline comparison — type-based vs Marian & Siméon path-based\n"
        f"document: {document.size()} nodes\n\n" + "\n".join(lines) + "\n"
    )
    path = write_report("baseline.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    by_name = {row["name"]: row for row in rows}
    # Precision: never worse, usually better.
    assert all(row["ours_keep"] <= row["base_keep"] + 1e-9 for row in rows)
    # Degeneration: the baseline keeps the whole document on the
    # conditional descendant query; we keep a fraction.
    assert by_name["DEGEN"]["base_keep"] > 0.999
    assert by_name["DEGEN"]["ours_keep"] < 0.6
    # // cost: QM07 (three //) forces the baseline to speculate over most
    # of the tree.
    assert by_name["QM07"]["speculative"] > 0.5 * document.size()
