"""Generality check: the full pipeline on a non-XMark corpus.

Runs the Table-1 style measurement (size kept, memory gain, soundness)
over the Shakespeare play corpus — deep act/scene/speech nesting and
text-dominant leaves, the structural opposite of XMark's wide flat
sections.  Emits ``benchmarks/results/shakespeare.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.core.pipeline import analyze
from repro.dtd.validator import validate
from repro.engine.executor import QueryEngine
from repro.projection.stats import compare_documents
from repro.projection.tree import prune_document
from repro.workloads.shakespeare import (
    SHAKESPEARE_QUERIES,
    generate_play,
    shakespeare_grammar,
)
from repro.xpath.evaluator import XPathEvaluator


@pytest.fixture(scope="module")
def corpus():
    grammar = shakespeare_grammar()
    document = generate_play(acts=8, seed=11)
    interpretation = validate(document, grammar)
    return grammar, document, interpretation


@pytest.mark.parametrize("name", sorted(SHAKESPEARE_QUERIES))
def test_query_on_pruned_play(benchmark, corpus, name):
    grammar, document, interpretation = corpus
    query = SHAKESPEARE_QUERIES[name]
    projector = analyze(grammar, [query]).projector
    pruned = prune_document(document, interpretation, projector)
    engine = QueryEngine(pruned)
    benchmark.group = "shakespeare:pruned-execution"
    benchmark(lambda: engine.run_xpath(query))


def test_shakespeare_report(benchmark, corpus):
    grammar, document, interpretation = corpus
    original_engine = QueryEngine(document)

    def build():
        rows = []
        for name, query in sorted(SHAKESPEARE_QUERIES.items()):
            projector = analyze(grammar, [query]).projector
            pruned = prune_document(document, interpretation, projector)
            assert (
                XPathEvaluator(pruned).select_ids(query)
                == XPathEvaluator(document).select_ids(query)
            ), name
            stats = compare_documents(document, pruned)
            pruned_engine = QueryEngine(pruned)
            rows.append(
                (
                    name,
                    stats.size_percent,
                    original_engine.document_bytes / max(1, pruned_engine.document_bytes),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [f"{'query':>22} {'size kept%':>11} {'mem gain':>9}"]
    for name, size_percent, memory_gain in rows:
        lines.append(f"{name:>22} {size_percent:>11.1f} {memory_gain:>8.1f}x")
    report = (
        "Shakespeare corpus — pipeline generality check "
        f"({document.size()} nodes)\n\n" + "\n".join(lines) + "\n"
    )
    path = write_report("shakespeare.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    # Pruning stays effective on the deep text-heavy corpus too — except
    # for queries that *materialise speeches* (hamlet-lines,
    # multi-speaker): speeches are ~all of a play, the corpus' analogue of
    # the paper's QM14 ceiling.
    kept = sorted(size_percent for _, size_percent, _ in rows)
    assert kept[0] < 5          # personae-style queries prune almost all
    assert kept[len(kept) // 2] < 35  # the median query prunes hard
    assert all(size_percent <= 100 for _, size_percent, _ in rows)
