"""Parallel batch-pruning benchmark: ``prune_many`` across a worker pool.

Standalone script (not pytest-benchmark — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]
        [--docs N] [--factor F] [--jobs N] [--repeats N]
        [--min-speedup X] [--output PATH]

Builds a corpus of XMark documents (distinct seeds, same grammar), then:

* prunes it with ``jobs=1`` and with ``--jobs`` workers, reporting the
  median wall time of each and the speedup;
* **asserts** that ``jobs=1`` output is byte-identical, per document, to
  the serial :func:`repro.prune` facade, and that the pooled run is
  byte-identical to ``jobs=1`` — parallelism must never change a byte;
* gates on ``--min-speedup`` (default 2.0 at 4 jobs).  On a machine with
  fewer usable cores than 2 the speedup gate is *recorded as skipped*
  rather than failed: a 1-core container cannot exhibit parallel speedup,
  and pretending otherwise would make the gate noise.  The equivalence
  gates always apply.

Writes ``benchmarks/results/BENCH_parallel.json`` plus a JSONL gauge
stream (``BENCH_parallel.jsonl``), same formats as ``bench_hotpath``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats

QUERIES = [
    "/site/open_auctions/open_auction/bidder/increase",
    "//person/name",
]


def _build_corpus(directory: str, docs: int, factor: float) -> list[str]:
    from repro.workloads.xmark import generate_file

    os.makedirs(directory, exist_ok=True)
    paths = []
    for i in range(docs):
        path = os.path.join(directory, f"xmark{i:03d}.xml")
        generate_file(path, factor=factor, seed=1000 + i)
        paths.append(path)
    return paths


def _time_batch(paths: list[str], grammar, projector, jobs: int, repeats: int):
    from repro.parallel import prune_many

    samples = []
    batch = None
    for _ in range(repeats):
        started = time.perf_counter()
        batch = prune_many(paths, grammar, projector, jobs=jobs)
        samples.append(time.perf_counter() - started)
        if not batch.ok:
            raise SystemExit(
                f"batch prune failed: {[str(e) for e in batch.errors]}"
            )
    return _stats.median(samples), batch


def run(docs: int, factor: float, jobs: int, repeats: int,
        output_path: str, min_speedup: float) -> dict:
    import tempfile

    from repro.api import prune
    from repro.core.cache import resolve_projector
    from repro.workloads.xmark import xmark_grammar

    grammar = xmark_grammar()
    projector = resolve_projector(grammar, QUERIES)
    cores = os.cpu_count() or 1

    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as tmp:
        print(f"generating {docs} XMark documents (factor {factor}) ...", flush=True)
        paths = _build_corpus(tmp, docs, factor)
        corpus_bytes = sum(os.path.getsize(p) for p in paths)

        serial_seconds, serial_batch = _time_batch(paths, grammar, projector, 1, repeats)
        pool_seconds, pool_batch = _time_batch(paths, grammar, projector, jobs, repeats)

        # Equivalence gates — parallelism must never change a byte.
        facade_identical = all(
            result.text == prune(path, grammar, projector).text
            for path, result in zip(paths, serial_batch.results)
        )
        pool_identical = pool_batch.texts() == serial_batch.texts()

    speedup = serial_seconds / pool_seconds if pool_seconds else float("inf")
    gates = {
        "facade_identity": _stats.gate(
            facade_identical,
            "jobs=1 output byte-identical to the serial prune facade",
        ),
        "pool_identity": _stats.gate(
            pool_identical,
            f"jobs={jobs} output byte-identical to jobs=1",
        ),
        "speedup": _stats.gate(
            None if cores < 2 else speedup >= min_speedup,
            f"cannot measure parallel speedup on {cores} cpu" if cores < 2 else (
                f"speedup {speedup:.2f}x at {jobs} jobs vs the "
                f"{min_speedup}x target ({cores} cores available)"
            ),
        ),
    }
    print(f"  jobs=1     {serial_seconds * 1000:8.1f} ms", flush=True)
    print(f"  jobs={jobs:<5d}{pool_seconds * 1000:8.1f} ms   {speedup:5.2f}x "
          f"(gate: {gates['speedup']['gate']})", flush=True)

    report = {
        "benchmark": "parallel",
        "environment": _stats.environment(xmark_factor=factor),
        "documents": docs,
        "xmark_factor": factor,
        "corpus_megabytes": round(corpus_bytes / 1e6, 3),
        "repeats": repeats,
        "jobs": jobs,
        "cpu_count": cores,
        "queries": QUERIES,
        "projector_size": len(projector),
        "serial_seconds": round(serial_seconds, 6),
        "pool_seconds": round(pool_seconds, 6),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "gates": gates,
        "pruned_bytes": serial_batch.stats.bytes_out,
        "size_percent_kept": round(
            100 * serial_batch.stats.bytes_out / max(1, serial_batch.stats.bytes_in), 2
        ),
    }
    report["failures"] = _stats.failures(gates)

    _stats.write_report(report, output_path)
    _write_gauges(report, os.path.splitext(output_path)[0] + ".jsonl")
    print(f"wrote {output_path}")
    return report


def _write_gauges(report: dict, path: str) -> None:
    from repro import obs

    sink = obs.JsonlSink(path)
    try:
        for key in ("corpus_megabytes", "serial_seconds", "pool_seconds",
                    "speedup", "documents", "jobs", "cpu_count",
                    "size_percent_kept"):
            sink.record({
                "type": "gauge",
                "name": f"bench.parallel.{key}",
                "value": report[key],
            })
    finally:
        sink.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=None,
                        help="corpus size (default 24; --smoke uses 8)")
    parser.add_argument("--factor", type=float, default=None,
                        help="XMark scale factor per document "
                             "(default 0.006; --smoke uses 0.002)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool width for the parallel run (default 4)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions (median is reported)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail if the pooled speedup is below this "
                             "(auto-skipped on <2 usable cores)")
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus + fewer repeats (CI smoke mode)")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "results", "BENCH_parallel.json"))
    args = parser.parse_args(argv)

    docs = args.docs if args.docs is not None else (8 if args.smoke else 24)
    factor = args.factor if args.factor is not None else (0.002 if args.smoke else 0.006)
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 3)
    report = run(docs, factor, args.jobs, repeats, args.output, args.min_speedup)
    for name in report["failures"]:
        print(f"FAIL {name}: {report['gates'][name]['reason']}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
