"""Table 1 — the paper's headline table.

For every selected XMark (QM) and XPathMark (QP) query, regenerate:

* **Gain in Size** (% of the original document the pruned one occupies),
* **Main Memory Usage** (modelled engine bytes to process the pruned doc),
* **Gain in Speed** (query time on original / query time on pruned),
* **Original / Pruned max Document Size** under a 512 MB memory budget
  (extrapolated, see ``largest_processable_megabytes``).

Run::

    pytest benchmarks/bench_table1.py --benchmark-only -q

The full table is written to ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import TABLE1_SELECTION, write_report
from repro.engine.executor import QueryEngine, largest_processable_megabytes
from repro.xmltree.serializer import serialize

BUDGET_BYTES = 512 * 10**6


@pytest.mark.parametrize("name", sorted(TABLE1_SELECTION))
def test_query_on_pruned_document(benchmark, prepared_queries, name):
    """Per-query benchmark: execution time on the *pruned* document (the
    quantity the pruned columns of Table 1 and Figure 4 report)."""
    prepared = prepared_queries[name]
    engine = QueryEngine(prepared.pruned_document)
    benchmark.group = "table1:pruned-execution"
    benchmark(lambda: engine.run(prepared.query))


def _measure(engine: QueryEngine, query: str, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        engine.run(query)
        best = min(best, time.perf_counter() - started)
    return best


def test_table1_report(benchmark, bench_xmark, prepared_queries, original_engine):
    """Assemble and emit the full Table 1; asserts the paper's shape
    claims (see inline comments)."""
    grammar, document, _ = bench_xmark
    original_bytes = len(serialize(document))
    original_memory = original_engine.document_bytes
    unpruned_max = largest_processable_megabytes(document, original_bytes, BUDGET_BYTES)

    def build_rows():
        rows = []
        for name in sorted(prepared_queries):
            prepared = prepared_queries[name]
            pruned_engine = QueryEngine(prepared.pruned_document)
            time_original = _measure(original_engine, prepared.query)
            time_pruned = _measure(pruned_engine, prepared.query)
            pruned_max = largest_processable_megabytes(
                prepared.pruned_document, original_bytes, BUDGET_BYTES
            )
            rows.append(
                {
                    "query": name,
                    "size_percent": prepared.size_percent,
                    "memory_mb": pruned_engine.document_bytes / 1e6,
                    "memory_gain": original_memory / max(1, pruned_engine.document_bytes),
                    "speedup": time_original / max(time_pruned, 1e-9),
                    "max_doc_mb": pruned_max,
                    "analysis_ms": prepared.analysis_seconds * 1000,
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    header = (
        f"Table 1 reproduction — XMark factor with original document "
        f"{original_bytes / 1e6:.2f} MB, {document.size()} nodes; "
        f"memory budget {BUDGET_BYTES / 1e6:.0f} MB (modelled)\n"
        f"unpruned max document: {unpruned_max:.1f} MB; "
        f"unpruned engine memory: {original_memory / 1e6:.2f} MB\n\n"
    )
    lines = [
        f"{'query':>6} {'size kept%':>10} {'mem MB':>8} {'mem gain':>9} "
        f"{'speedup':>8} {'max doc MB':>11} {'analysis ms':>12}"
    ]
    for row in rows:
        lines.append(
            f"{row['query']:>6} {row['size_percent']:>10.1f} {row['memory_mb']:>8.2f} "
            f"{row['memory_gain']:>8.1f}x {row['speedup']:>7.1f}x "
            f"{row['max_doc_mb']:>11.1f} {row['analysis_ms']:>12.1f}"
        )
    report = header + "\n".join(lines) + "\n"
    path = write_report("table1.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    by_name = {row["query"]: row for row in rows}
    # Shape claims from the paper's Table 1 / Section 6 prose:
    # 1. Very selective queries prune away almost everything (QM06: 99.7%
    #    discarded in the paper).
    assert by_name["QM06"]["size_percent"] < 8.0
    # 2. QM14 is the least-pruned XMark query (keeps descriptions).
    xmark_rows = [row for row in rows if row["query"].startswith("QM")]
    assert max(xmark_rows, key=lambda r: r["size_percent"])["query"] == "QM14"
    # 3. Analysis time is negligible (< 0.5 s per query).
    assert all(row["analysis_ms"] < 500 for row in rows)
    # 4. Every query can process a larger document after pruning.
    assert all(row["max_doc_mb"] >= unpruned_max * 0.99 for row in rows)
    # 5. For most queries memory gain is substantial (> 2x for at least
    #    half of the selection).
    gains = sorted(row["memory_gain"] for row in rows)
    assert gains[len(gains) // 2] > 2.0
