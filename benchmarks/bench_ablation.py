"""Ablations of the design choices DESIGN.md calls out.

Four switchable mechanisms, each measured by the size of the pruned
document with the mechanism on vs off:

* **per-element text names** — the Section 6 heuristic ("every name
  Y -> String occurs exactly once in the right hand side of an edge");
  off = one shared ``#text`` name.  The effect concentrates on
  mixed-content queries: with a shared name, needing *any* text anywhere
  keeps the prose of every kept mixed-content element.
* **the Section 5 rewriting** — pushing ``if C($y)`` conditions into the
  binding path; off reproduces the paper's degeneration argument.
* **materialisation** — ``τ' ∪ A_E(τ'', descendant)``; off keeps answers
  as bare nodes (the correct setting only for engines that never
  serialise results).
* **the depth heuristic** — Section 6's depth tracking via the
  depth-unfolded grammar (``repro.core.depth``); it pays on recursive
  regions (XMark's parlist/listitem nesting).

Emits ``benchmarks/results/ablation.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_FACTOR, write_report
from repro.core.pipeline import analyze
from repro.dtd.grammar import grammar_from_text
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.xmark import XMARK_DTD, generate_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xquery.evaluator import XQueryEvaluator

#: Queries where each heuristic has bite.
TEXT_NAME_QUERIES = {
    "keyword-scan": "//closed_auction//text/keyword",
    "emph-in-items": "/site/regions/*/item/description//emph",
    "names-only": "/site/people/person/name/text()",
}

REWRITE_QUERY = (
    "for $y in /site//node() return "
    "if ($y/author = 'nobody') then <r>{$y}</r> else ()"
)

MATERIALIZE_QUERIES = {
    "items": "//item",
    "auction-intervals": "/site/open_auctions/open_auction/interval",
}

#: Queries with depth-selective structure on XMark's recursive region
#: (description → parlist → listitem → parlist → …).
DEPTH_QUERIES = {
    "top-listitems": "/site/regions/europe/item/description/parlist/listitem/text/keyword",
    "shallow-bold": "/site/categories/category/description/text/bold",
}


def test_ablation_report(benchmark):
    document = generate_document(BENCH_FACTOR, seed=99)

    def build():
        sections = []

        # -- per-element text names ------------------------------------
        with_heuristic = grammar_from_text(XMARK_DTD, "site")
        without_heuristic = grammar_from_text(
            XMARK_DTD, "site", per_element_text_names=False
        )
        rows = []
        for label, query in TEXT_NAME_QUERIES.items():
            sizes = []
            for grammar in (with_heuristic, without_heuristic):
                interpretation = validate(document, grammar)
                projector = analyze(grammar, query).projector
                pruned = prune_document(document, interpretation, projector)
                original = XPathEvaluator(document).select_ids(query)
                assert original == XPathEvaluator(pruned).select_ids(query), label
                sizes.append(pruned.size() / document.size())
            rows.append((label, sizes[0], sizes[1]))
        sections.append(("per-element text names (on vs shared #text)", rows))

        # -- Section 5 rewriting ----------------------------------------
        grammar = with_heuristic
        interpretation = validate(document, grammar)
        rows = []
        for flag in (True, False):
            result = analyze(grammar, REWRITE_QUERY, language="xquery", rewrite=flag)
            pruned = prune_document(document, interpretation, result.projector)
            reference = XQueryEvaluator(document).evaluate_serialized(REWRITE_QUERY)
            assert reference == XQueryEvaluator(pruned).evaluate_serialized(REWRITE_QUERY)
            rows.append(("rewrite=" + str(flag), pruned.size() / document.size(), None))
        sections.append(("Section 5 condition-pushing rewrite", rows))

        # -- materialisation ---------------------------------------------
        rows = []
        for label, query in MATERIALIZE_QUERIES.items():
            sizes = []
            for materialize in (True, False):
                projector = analyze(grammar, query, materialize=materialize).projector
                pruned = prune_document(document, interpretation, projector)
                original = XPathEvaluator(document).select_ids(query)
                assert original == XPathEvaluator(pruned).select_ids(query), label
                sizes.append(pruned.size() / document.size())
            rows.append((label, sizes[0], sizes[1]))
        sections.append(("materialisation (answers' subtrees on vs off)", rows))

        # -- the depth heuristic (recursive parlist/listitem region) ------
        from repro.core.depth import depth_unfolded_grammar

        unfolded = depth_unfolded_grammar(grammar, max_depth=8)
        unfolded_interpretation = validate(document, unfolded)
        rows = []
        for label, query in DEPTH_QUERIES.items():
            with_depth = prune_document(
                document, unfolded_interpretation,
                analyze(unfolded, query).projector,
            )
            without_depth = prune_document(
                document, interpretation, analyze(grammar, query).projector
            )
            original = XPathEvaluator(document).select_ids(query)
            assert original == XPathEvaluator(with_depth).select_ids(query), label
            rows.append(
                (label, with_depth.size() / document.size(), without_depth.size() / document.size())
            )
        sections.append(("depth heuristic (depth-unfolded vs name-only)", rows))
        return sections

    sections = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = []
    for title, rows in sections:
        lines.append(title)
        for label, on_value, off_value in rows:
            if off_value is None:
                lines.append(f"  {label:>24}: keep {on_value:6.1%}")
            else:
                lines.append(
                    f"  {label:>24}: keep {on_value:6.1%} (on)  vs {off_value:6.1%} (off)"
                )
        lines.append("")
    report = "Ablations of the paper's design choices\n\n" + "\n".join(lines)
    path = write_report("ablation.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    text_rows = sections[0][1]
    # The heuristic never hurts and pays on at least one mixed-content query.
    assert all(on <= off + 1e-9 for _, on, off in text_rows)
    assert any(on < off * 0.9 for _, on, off in text_rows)
    # Rewriting strictly improves the degenerate query.
    rewrite_rows = sections[1][1]
    assert rewrite_rows[0][1] < rewrite_rows[1][1] * 0.7
    # Materialisation costs size (that is its point).
    for _, with_mat, without_mat in sections[2][1]:
        assert with_mat >= without_mat
    # The depth heuristic never hurts and pays on recursive structure.
    depth_rows = sections[3][1]
    assert all(with_depth <= name_only + 1e-9 for _, with_depth, name_only in depth_rows)
    assert any(with_depth < name_only * 0.95 for _, with_depth, name_only in depth_rows)
