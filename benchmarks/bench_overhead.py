"""The Section 6 overhead claims.

* **Analysis cost**: computing a projector is negligible — the paper
  reports ~0.5 s for a 60 MB document's workload on 2006 hardware, and
  stresses it is document-size independent (it only reads the DTD).
* **Pruning cost**: a single one-pass traversal — time *linear* in
  document size, memory *constant* (bounded by document depth).
* **Long queries / large DTDs**: twenty-step paths still analyse fast.

Emits ``benchmarks/results/overhead.txt``.
"""

from __future__ import annotations

import io
import tracemalloc

import pytest

from benchmarks.conftest import write_report

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats
from repro.api import prune
from repro.core.pipeline import analyze
from repro.workloads.xmark import XMARK_QUERIES, generate_document, xmark_grammar
from repro.xmltree.serializer import serialize

PRUNE_QUERY = "/site/people/person[profile/age > 60]/name"


@pytest.fixture(scope="module")
def projector():
    grammar = xmark_grammar()
    return grammar, analyze(grammar, [PRUNE_QUERY]).projector


def test_projector_inference_is_fast(benchmark):
    """Static analysis time for a representative workload (all Table-1
    XMark queries) — the paper's '< 0.5 s' claim."""
    grammar = xmark_grammar()
    queries = [XMARK_QUERIES[name] for name in ("QM01", "QM06", "QM07", "QM14", "QM20")]
    benchmark.group = "overhead:analysis"
    result = benchmark(lambda: analyze(grammar, queries, language="xquery"))
    assert result.analysis_seconds < 0.5


def test_long_path_analysis(benchmark):
    """Twenty-step XPath expressions (the paper tested 'long XPath
    expressions (twenty steps or so)')."""
    grammar = xmark_grammar()
    spine = (
        "/site/closed_auctions/closed_auction/annotation/description/parlist/"
        "listitem/parlist/listitem/text/emph/keyword"
    )
    query = spine + "/ancestor::listitem/text/bold/parent::text/keyword/ancestor::parlist/listitem"
    benchmark.group = "overhead:analysis"
    projector = benchmark(lambda: analyze(grammar, [query]).projector)
    assert grammar.is_projector(projector)


@pytest.mark.parametrize("factor", [0.002, 0.004, 0.008])
def test_pruning_scales_linearly(benchmark, projector, factor):
    """Streaming pruning time per factor; the report test checks the
    linearity of the trend."""
    grammar, names = projector
    text = serialize(generate_document(factor, seed=5))
    benchmark.group = "overhead:pruning"
    benchmark.extra_info["megabytes"] = len(text) / 1e6

    def run_prune():
        sink = io.StringIO()
        prune(io.StringIO(text), grammar, names, out=sink)
        return sink

    benchmark.pedantic(run_prune, rounds=3, iterations=1)


def test_overhead_report(benchmark, projector, tmp_path):
    grammar, names = projector

    def build():
        rows = []
        for index, factor in enumerate((0.002, 0.004, 0.008, 0.016)):
            source_path = tmp_path / f"doc{index}.xml"
            text = serialize(generate_document(factor, seed=5))
            source_path.write_text(text)

            # Timing pass (tracemalloc off: it distorts time ~20x).
            def one_prune():
                with open(source_path, "r", encoding="utf-8") as source:
                    prune(source, grammar, names, out=io.StringIO())

            elapsed, _ = _stats.time_call(one_prune)

            # Memory pass (true file streaming; only pipeline allocations
            # are traced).
            tracemalloc.start()
            with open(source_path, "r", encoding="utf-8") as source:
                prune(source, grammar, names, out=io.StringIO())
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            rows.append((len(text) / 1e6, elapsed, peak / 1e6))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [f"{'doc MB':>8} {'prune s':>9} {'MB/s':>7} {'peak heap MB':>13}"]
    for megabytes, seconds, peak in rows:
        lines.append(
            f"{megabytes:>8.2f} {seconds:>9.2f} {megabytes / max(seconds, 1e-9):>7.1f} {peak:>13.2f}"
        )
    report = (
        "Pruning overhead — linear time, constant memory (Section 6)\n\n"
        + "\n".join(lines)
        + "\n"
    )
    path = write_report("overhead.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    # Linearity: throughput varies by at most ~2.5x across an 8x size range.
    throughputs = [megabytes / seconds for megabytes, seconds, _ in rows]
    assert max(throughputs) / min(throughputs) < 2.5
    # Constant memory: peak heap grows far slower than document size
    # (identical-string interning etc. allow a small drift).
    smallest, largest = rows[0], rows[-1]
    size_growth = largest[0] / smallest[0]
    heap_growth = largest[2] / max(smallest[2], 1e-9)
    assert heap_growth < size_growth / 2
