"""Projection-service benchmark: warm-server latency vs the cold CLI.

Standalone script (not pytest-benchmark — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
        [--factor F] [--requests N] [--clients N] [--jobs N]
        [--cold-repeats N] [--max-p50-ratio X] [--output PATH]

The paper's argument for a resident service is amortization: the static
phase (DTD parse, Fig. 1/2 inference, projector compilation) runs once,
so each request pays only the per-document pruning cost.  This benchmark
measures whether that amortization is *realized*:

* **cold** — the one-shot CLI (``python -m repro prune``) on one XMark
  document, median wall-clock over a few runs: interpreter start, grammar
  parse, inference, prune, every time;
* **warm** — the same document pruned through a running
  :class:`~repro.service.server.ProjectionServer` via
  :class:`~repro.service.client.ServiceClient`, per-request latency
  sampled ``--requests`` times (p50/p95 reported);
* **concurrent** — ``--clients`` threads, each with its own connection,
  prune the document simultaneously; reports req/s and **asserts** every
  response is byte-identical to the serial :func:`repro.prune` facade
  with zero admission refusals;
* gates ``warm p50 <= --max-p50-ratio x cold`` (default 0.5: a warm
  request must cost at most half a cold invocation, or keeping the
  server resident is not paying for itself).

Writes ``benchmarks/results/BENCH_service.json`` plus a JSONL gauge
stream (``BENCH_service.jsonl``), same formats as the other benches.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import threading
import time

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats

QUERIES = [
    "/site/open_auctions/open_auction/bidder/increase",
    "//person/name",
]

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _cold_cli_seconds(doc_path: str, out_path: str, repeats: int) -> list[float]:
    """Wall-clock of the one-shot CLI, interpreter start included."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [REPO_SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [sys.executable, "-m", "repro", "prune", "--xmark"]
    for query in QUERIES:
        command += ["--query", query]
    command += [doc_path, out_path]
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        subprocess.run(command, check=True, capture_output=True, env=env)
        samples.append(time.perf_counter() - started)
    return samples


def run(factor: float, requests: int, clients: int, jobs: int,
        cold_repeats: int, max_p50_ratio: float, output_path: str) -> dict:
    import tempfile

    from repro.api import prune
    from repro.core.cache import ProjectorCache, resolve_projector
    from repro.service import ServiceClient, ServiceConfig, serve_background
    from repro.workloads.xmark import generate_file, xmark_grammar

    grammar = xmark_grammar()
    projector = resolve_projector(grammar, QUERIES)

    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        doc_path = os.path.join(tmp, "xmark.xml")
        print(f"generating one XMark document (factor {factor}) ...", flush=True)
        generate_file(doc_path, factor=factor, seed=97)
        doc_bytes = os.path.getsize(doc_path)
        expected = prune(doc_path, grammar, projector).text
        assert expected is not None

        print(f"cold one-shot CLI x {cold_repeats} ...", flush=True)
        cold_samples = _cold_cli_seconds(
            doc_path, os.path.join(tmp, "cold-out.xml"), cold_repeats
        )
        cold_seconds = _stats.median(cold_samples)
        with open(os.path.join(tmp, "cold-out.xml"), encoding="utf-8") as handle:
            cold_identical = handle.read() == expected

        config = ServiceConfig(
            port=0, jobs=jobs, queue_limit=max(64, clients + 8),
            per_connection=8,
        )
        with serve_background(config, cache=ProjectorCache()) as server:
            address = ("127.0.0.1", server.port)
            with ServiceClient(*address, timeout=300) as client:
                # Warm-up: pays the static phase (grammar memo, inference,
                # pin + worker spawn) exactly once.
                client.prune(source_path=doc_path, xmark=True, queries=QUERIES)

                print(f"warm server, {requests} sequential requests ...", flush=True)
                warm_samples = []
                for _ in range(requests):
                    started = time.perf_counter()
                    outcome = client.prune(
                        source_path=doc_path, xmark=True, queries=QUERIES
                    )
                    warm_samples.append(time.perf_counter() - started)
                    if outcome.text != expected:
                        raise SystemExit("warm response differs from the facade")

            print(f"{clients} concurrent clients ...", flush=True)
            per_client = max(2, requests // clients)
            errors: list[str] = []

            def hammer(seed: int) -> None:
                try:
                    with ServiceClient(*address, timeout=300) as mine:
                        for _ in range(per_client):
                            outcome = mine.prune(
                                source_path=doc_path, xmark=True, queries=QUERIES
                            )
                            if outcome.text != expected:
                                errors.append(f"client {seed}: output differs")
                                return
                except Exception as exc:
                    errors.append(f"client {seed}: {type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in range(clients)
            ]
            concurrent_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            concurrent_seconds = time.perf_counter() - concurrent_started

            with ServiceClient(*address) as probe:
                stats = probe.stats()

    warm = _stats.summarize_seconds(warm_samples)
    warm_p50 = warm["p50"]
    throughput = (clients * per_client) / concurrent_seconds
    ratio = warm_p50 / cold_seconds if cold_seconds else float("inf")

    print(f"  cold CLI        {cold_seconds * 1000:8.1f} ms (median of {cold_repeats})")
    print(f"  warm p50        {warm_p50 * 1000:8.1f} ms   ({ratio:.3f}x cold, "
          f"gate <= {max_p50_ratio}x)")
    print(f"  warm p95        {warm['p95'] * 1000:8.1f} ms   "
          f"p99 {warm['p99'] * 1000:8.1f} ms")
    print(f"  concurrent      {throughput:8.1f} req/s "
          f"({clients} clients x {per_client})", flush=True)

    gates = {
        "cold_identity": _stats.gate(
            cold_identical, "cold CLI output byte-identical to the facade"
        ),
        "concurrent_clients": _stats.gate(
            not errors,
            "every concurrent client succeeded" if not errors
            else f"concurrent clients failed: {errors[:3]}",
        ),
        "no_refusals": _stats.gate(
            not stats["refusals"],
            f"{stats['refusals']} refusals below the admission limit",
        ),
        "amortization": _stats.gate(
            ratio <= max_p50_ratio,
            f"warm p50 is {ratio:.3f}x the cold CLI wall-clock "
            f"(gate {max_p50_ratio}x)",
        ),
    }
    report = {
        "benchmark": "service",
        "environment": _stats.environment(xmark_factor=factor),
        "xmark_factor": factor,
        "document_bytes": doc_bytes,
        "queries": QUERIES,
        "projector_size": len(projector),
        "jobs": jobs,
        "requests": requests,
        "clients": clients,
        "per_client": per_client,
        "cold_repeats": cold_repeats,
        "cold_cli_seconds": round(cold_seconds, 6),
        "warm_latency": {k: round(v, 6) if isinstance(v, float) else v
                         for k, v in warm.items()},
        "warm_p50_seconds": round(warm_p50, 6),
        "warm_p95_seconds": round(warm["p95"], 6),
        "warm_over_cold_p50": round(ratio, 4),
        "max_p50_ratio": max_p50_ratio,
        "requests_per_second": round(throughput, 2),
        "server_latency": stats.get("latency"),
        "concurrent_errors": errors,
        "refusals": stats["refusals"],
        "cache": stats["cache"],
        "pool": stats["pool"],
        "gates": gates,
    }
    report["failures"] = _stats.failures(gates)

    _stats.write_report(report, output_path)
    _write_gauges(report, os.path.splitext(output_path)[0] + ".jsonl")
    print(f"wrote {output_path}")
    return report


def _write_gauges(report: dict, path: str) -> None:
    from repro import obs

    sink = obs.JsonlSink(path)
    try:
        for key in ("document_bytes", "cold_cli_seconds", "warm_p50_seconds",
                    "warm_p95_seconds", "warm_over_cold_p50",
                    "requests_per_second", "clients", "jobs"):
            sink.record({
                "type": "gauge",
                "name": f"bench.service.{key}",
                "value": report[key],
            })
    finally:
        sink.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=float, default=None,
                        help="XMark scale factor for the document "
                             "(default 0.01; --smoke uses 0.003)")
    parser.add_argument("--requests", type=int, default=None,
                        help="sequential warm requests to sample "
                             "(default 200; --smoke uses 60)")
    parser.add_argument("--clients", type=int, default=20,
                        help="concurrent clients for the throughput phase "
                             "(default 20)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="resident worker processes (default 2)")
    parser.add_argument("--cold-repeats", type=int, default=None,
                        help="cold CLI timing repetitions (median reported)")
    parser.add_argument("--max-p50-ratio", type=float, default=0.5,
                        help="fail if warm p50 exceeds this fraction of the "
                             "cold CLI wall-clock (default 0.5)")
    parser.add_argument("--smoke", action="store_true",
                        help="small document + fewer samples (CI smoke mode)")
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(__file__), "results", "BENCH_service.json"))
    args = parser.parse_args(argv)

    factor = args.factor if args.factor is not None else (0.003 if args.smoke else 0.01)
    requests = args.requests if args.requests is not None else (60 if args.smoke else 200)
    cold_repeats = args.cold_repeats if args.cold_repeats is not None else (
        2 if args.smoke else 3
    )
    report = run(factor, requests, args.clients, args.jobs, cold_repeats,
                 args.max_p50_ratio, args.output)
    for name in report["failures"]:
        print(f"FAIL {name}: {report['gates'][name]['reason']}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
