"""Prune-while-loading and index pruning — the conclusion's integrations.

Compares three ways an engine can get a queryable tree:

* full load (the unpruned baseline),
* load → separate prune pass → pruned tree (what an external tool does),
* load *through* the pruner, optionally validating, in one pass — the
  paper's "pruning overhead diluted in the parsing/validation phase".

Also measures tag-index pruning (the TIMBER scenario: indexes are a large
fraction of the store and shrink with the projector).

Emits ``benchmarks/results/loading.txt``.
"""

from __future__ import annotations

import io

import pytest

from benchmarks.conftest import BENCH_FACTOR, write_report

try:
    import _stats
except ImportError:  # imported as a package module (pytest)
    from benchmarks import _stats
from repro.core.pipeline import analyze
from repro.dtd.validator import validate
from repro.engine.index import TagIndex
from repro.engine.loader import load_full, load_pruned, load_pruned_validating
from repro.projection.tree import prune_document
from repro.workloads.xmark import generate_document, xmark_grammar
from repro.xmltree.serializer import serialize

QUERY = "/site/people/person[profile/age > 60]/name"


@pytest.fixture(scope="module")
def setup():
    grammar = xmark_grammar()
    document = generate_document(BENCH_FACTOR, seed=99)
    text = serialize(document)
    projector = analyze(grammar, [QUERY]).projector
    return grammar, document, text, projector


def test_load_full(benchmark, setup):
    _, _, text, _ = setup
    benchmark.group = "loading"
    benchmark.pedantic(lambda: load_full(io.StringIO(text)), rounds=3, iterations=1)


def test_load_pruned_one_pass(benchmark, setup):
    grammar, _, text, projector = setup
    benchmark.group = "loading"
    benchmark.pedantic(
        lambda: load_pruned(io.StringIO(text), grammar, projector),
        rounds=3,
        iterations=1,
    )


def test_load_pruned_validating(benchmark, setup):
    grammar, _, text, projector = setup
    benchmark.group = "loading"
    benchmark.pedantic(
        lambda: load_pruned_validating(io.StringIO(text), grammar, projector),
        rounds=3,
        iterations=1,
    )


def test_loading_report(benchmark, setup):
    grammar, document, text, projector = setup

    def build():
        full = load_full(io.StringIO(text))

        def prune_pass():
            interpretation = validate(full.document, grammar)
            return interpretation, prune_document(full.document, interpretation, projector)

        prune_seconds, (interpretation, pruned_tree) = _stats.time_call(prune_pass)
        two_pass_seconds = full.seconds + prune_seconds

        one_pass = load_pruned(io.StringIO(text), grammar, projector)
        one_pass_validating = load_pruned_validating(io.StringIO(text), grammar, projector)

        index = TagIndex.build_for(full.document)
        pruned_index = index.pruned(interpretation, projector)
        from repro.engine.metrics import DEFAULT_MODEL

        return {
            "full": (full.seconds, full.model_bytes, full.nodes_built),
            "two-pass": (two_pass_seconds, DEFAULT_MODEL.document_bytes(pruned_tree), pruned_tree.size()),
            "one-pass": (one_pass.seconds, one_pass.model_bytes, one_pass.nodes_built),
            "one-pass+validate": (
                one_pass_validating.seconds,
                one_pass_validating.model_bytes,
                one_pass_validating.nodes_built,
            ),
            "index": (index.stats().model_bytes, pruned_index.stats().model_bytes),
        }

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [f"{'strategy':>20} {'seconds':>9} {'model MB':>9} {'nodes':>8}"]
    for label in ("full", "two-pass", "one-pass", "one-pass+validate"):
        seconds, model_bytes, nodes = data[label]
        megabytes = model_bytes / 1e6 if model_bytes else float("nan")
        lines.append(f"{label:>20} {seconds:>9.3f} {megabytes:>9.2f} {nodes:>8}")
    index_bytes, pruned_index_bytes = data["index"]
    lines.append("")
    lines.append(
        f"tag index: {index_bytes / 1e3:.1f} kB -> {pruned_index_bytes / 1e3:.1f} kB "
        f"({100 * pruned_index_bytes / max(1, index_bytes):.1f}% kept)"
    )
    report = (
        "Prune-while-loading (conclusion's engine integration)\n\n"
        + "\n".join(lines)
        + "\n"
    )
    path = write_report("loading.txt", report)
    print("\n" + report + f"\n[written to {path}]")

    full_seconds, full_bytes, full_nodes = data["full"]
    one_seconds, one_bytes, one_nodes = data["one-pass"]
    # One-pass pruned loading allocates a fraction of the nodes and is
    # cheaper than load-then-prune.
    assert one_nodes < 0.25 * full_nodes
    assert one_bytes < 0.25 * full_bytes
    assert one_seconds < data["two-pass"][0]
    # Index pruning shrinks the index.
    assert pruned_index_bytes < 0.25 * index_bytes
